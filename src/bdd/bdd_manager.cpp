// Node arena, unique table, computed cache, reference counting, and
// mark-and-sweep garbage collection.
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/control.hpp"
#include "obs/log.hpp"

namespace hsis {

namespace {

constexpr uint32_t kRefSaturated = 0xFFFFFFFFu;

inline uint64_t mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

inline uint64_t hash3(uint32_t a, uint32_t b, uint32_t c) {
  return mix64((static_cast<uint64_t>(a) << 32) ^ b) * 0x9e3779b97f4a7c15ull + c;
}

}  // namespace

// ---------------------------------------------------------------- handles

Bdd::Bdd(BddManager* m, uint32_t i) : mgr_(m), idx_(i) {
  if (mgr_ != nullptr) mgr_->incRef(idx_);
}

Bdd::Bdd(const Bdd& o) : mgr_(o.mgr_), idx_(o.idx_) {
  if (mgr_ != nullptr) mgr_->incRef(idx_);
}

Bdd::Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), idx_(o.idx_) {
  o.mgr_ = nullptr;
  o.idx_ = 0;
}

Bdd& Bdd::operator=(const Bdd& o) {
  if (this == &o) return *this;
  if (o.mgr_ != nullptr) o.mgr_->incRef(o.idx_);
  if (mgr_ != nullptr) mgr_->decRef(idx_);
  mgr_ = o.mgr_;
  idx_ = o.idx_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& o) noexcept {
  if (this == &o) return *this;
  if (mgr_ != nullptr) mgr_->decRef(idx_);
  mgr_ = o.mgr_;
  idx_ = o.idx_;
  o.mgr_ = nullptr;
  o.idx_ = 0;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->decRef(idx_);
}

bool Bdd::isZero() const { return mgr_ != nullptr && idx_ == 0; }
bool Bdd::isOne() const { return mgr_ != nullptr && idx_ == 1; }

BddVar Bdd::var() const {
  assert(mgr_ != nullptr && idx_ > 1);
  return mgr_->nodes_[idx_].var;
}

Bdd Bdd::low() const {
  assert(mgr_ != nullptr && idx_ > 1);
  return mgr_->makeHandle(mgr_->nodes_[idx_].lo);
}

Bdd Bdd::high() const {
  assert(mgr_ != nullptr && idx_ > 1);
  return mgr_->makeHandle(mgr_->nodes_[idx_].hi);
}

Bdd Bdd::operator&(const Bdd& o) const { return mgr_->andOp(*this, o); }
Bdd Bdd::operator|(const Bdd& o) const { return mgr_->orOp(*this, o); }
Bdd Bdd::operator^(const Bdd& o) const { return mgr_->xorOp(*this, o); }
Bdd Bdd::operator!() const { return mgr_->notOp(*this); }
Bdd& Bdd::operator&=(const Bdd& o) { return *this = mgr_->andOp(*this, o); }
Bdd& Bdd::operator|=(const Bdd& o) { return *this = mgr_->orOp(*this, o); }
Bdd& Bdd::operator^=(const Bdd& o) { return *this = mgr_->xorOp(*this, o); }

Bdd Bdd::implies(const Bdd& o) const {
  return mgr_->ite(*this, o, mgr_->bddOne());
}

bool Bdd::leq(const Bdd& o) const { return mgr_->leq(*this, o); }

size_t Bdd::nodeCount() const {
  return mgr_ == nullptr ? 0 : mgr_->nodeCount(*this);
}

// ---------------------------------------------------------------- manager

BddManager::BddManager(uint32_t numVars)
    : obsCacheLookups_(obs::counter("bdd.cache.lookups")),
      obsCacheHits_(obs::counter("bdd.cache.hits")),
      obsNodesCreated_(obs::counter("bdd.nodes.created")),
      obsGcRuns_(obs::counter("bdd.gc.runs")),
      obsGcReclaimed_(obs::counter("bdd.gc.reclaimed")),
      obsReorderings_(obs::counter("bdd.reorder.count")),
      obsUniqueSize_(obs::gauge("bdd.unique.size")),
      obsUniquePeak_(obs::gauge("bdd.unique.peak")),
      obsUniqueBuckets_(obs::gauge("bdd.unique.buckets")) {
  nodes_.reserve(1 << 12);
  // Terminals occupy slots 0 (FALSE) and 1 (TRUE); they are never in the
  // unique table and carry permanent references.
  nodes_.push_back({kTermLevel, 0, 0, kNil, kRefSaturated});
  nodes_.push_back({kTermLevel, 1, 1, kNil, kRefSaturated});

  uniqueTable_.assign(1 << 12, kNil);
  uniqueMask_ = static_cast<uint32_t>(uniqueTable_.size() - 1);
  obsUniqueBuckets_.set(static_cast<int64_t>(uniqueTable_.size()));
  cache_.assign(1 << 14, CacheEntry{});
  cacheMask_ = static_cast<uint32_t>(cache_.size() - 1);

  for (uint32_t i = 0; i < numVars; ++i) newVar();
}

BddManager::~BddManager() = default;

Bdd BddManager::makeHandle(uint32_t idx) { return Bdd(this, idx); }

BddVar BddManager::newVar() {
  BddVar v = static_cast<BddVar>(perm_.size());
  perm_.push_back(v);
  invPerm_.push_back(v);
  return v;
}

BddVar BddManager::newVarAtLevel(uint32_t lvl) {
  BddVar v = newVar();
  if (lvl >= perm_.size()) return v;
  // Shift levels [lvl, end) down by one and place v at lvl.
  for (uint32_t l = static_cast<uint32_t>(invPerm_.size()) - 1; l > lvl; --l) {
    invPerm_[l] = invPerm_[l - 1];
    perm_[invPerm_[l]] = l;
  }
  invPerm_[lvl] = v;
  perm_[v] = lvl;
  return v;
}

Bdd BddManager::bddVar(BddVar v) {
  assert(v < perm_.size());
  return makeHandle(mkNode(v, 0, 1));
}

Bdd BddManager::bddLiteral(BddVar v, bool positive) {
  return makeHandle(positive ? mkNode(v, 0, 1) : mkNode(v, 1, 0));
}

Bdd BddManager::bddOne() { return makeHandle(1); }
Bdd BddManager::bddZero() { return makeHandle(0); }

// ------------------------------------------------------------- node layer

uint32_t BddManager::mkNode(BddVar var, uint32_t lo, uint32_t hi) {
  if (lo == hi) return lo;
  uint64_t h = hash3(var, lo, hi);
  uint32_t bucket = static_cast<uint32_t>(h) & uniqueMask_;
  for (uint32_t n = uniqueTable_[bucket]; n != kNil; n = nodes_[n].next) {
    const Node& nd = nodes_[n];
    if (nd.var == var && nd.lo == lo && nd.hi == hi) return n;
  }
  uint32_t idx;
  if (!freeList_.empty()) {
    idx = freeList_.back();
    freeList_.pop_back();
    nodes_[idx] = Node{var, lo, hi, kNil, 0};
  } else {
    idx = static_cast<uint32_t>(nodes_.size());
    if (idx == kNil) throw std::length_error("BddManager: node arena full");
    nodes_.push_back(Node{var, lo, hi, kNil, 0});
  }
  nodes_[idx].next = uniqueTable_[bucket];
  uniqueTable_[bucket] = idx;
  ++uniqueCount_;
  obsNodesCreated_.add();
  obsUniqueSize_.set(static_cast<int64_t>(uniqueCount_));
  if (uniqueCount_ > stats_.peakLiveNodes) {
    stats_.peakLiveNodes = uniqueCount_;
    obsUniquePeak_.updateMax(static_cast<int64_t>(uniqueCount_));
  }
  if (uniqueCount_ > uniqueTable_.size()) growUnique();
  // Keep the operation cache proportional to the node count, or deep
  // recursions degenerate into exponential recomputation.
  if (uniqueCount_ > cache_.size()) growCache();
  return idx;
}

void BddManager::growCache() {
  std::vector<CacheEntry> old = std::move(cache_);
  cache_.assign(old.size() * 2, CacheEntry{});
  cacheMask_ = static_cast<uint32_t>(cache_.size() - 1);
  for (const CacheEntry& e : old) {
    if (e.k1 == ~0ull && e.k2 == ~0ull) continue;
    uint32_t slot = static_cast<uint32_t>(mix64(e.k1 ^ mix64(e.k2))) & cacheMask_;
    cache_[slot] = e;
  }
}

void BddManager::uniqueInsert(uint32_t n) {
  const Node& nd = nodes_[n];
  uint32_t bucket = static_cast<uint32_t>(hash3(nd.var, nd.lo, nd.hi)) & uniqueMask_;
  nodes_[n].next = uniqueTable_[bucket];
  uniqueTable_[bucket] = n;
  ++uniqueCount_;
  // Re-inserts during level swaps grow the table too; without this the
  // peak could read below the live count right after a reordering.
  if (uniqueCount_ > stats_.peakLiveNodes) {
    stats_.peakLiveNodes = uniqueCount_;
    obsUniquePeak_.updateMax(static_cast<int64_t>(uniqueCount_));
  }
}

void BddManager::uniqueRemove(uint32_t n) {
  const Node& nd = nodes_[n];
  uint32_t bucket = static_cast<uint32_t>(hash3(nd.var, nd.lo, nd.hi)) & uniqueMask_;
  uint32_t* link = &uniqueTable_[bucket];
  while (*link != kNil) {
    if (*link == n) {
      *link = nodes_[n].next;
      nodes_[n].next = kNil;
      --uniqueCount_;
      return;
    }
    link = &nodes_[*link].next;
  }
  assert(false && "uniqueRemove: node not in table");
}

void BddManager::growUnique() {
  std::vector<uint32_t> old = std::move(uniqueTable_);
  uniqueTable_.assign(old.size() * 2, kNil);
  uniqueMask_ = static_cast<uint32_t>(uniqueTable_.size() - 1);
  obsUniqueBuckets_.set(static_cast<int64_t>(uniqueTable_.size()));
  for (uint32_t head : old) {
    for (uint32_t n = head; n != kNil;) {
      uint32_t next = nodes_[n].next;
      const Node& nd = nodes_[n];
      uint32_t bucket =
          static_cast<uint32_t>(hash3(nd.var, nd.lo, nd.hi)) & uniqueMask_;
      nodes_[n].next = uniqueTable_[bucket];
      uniqueTable_[bucket] = n;
      n = next;
    }
  }
}

void BddManager::incRef(uint32_t n) {
  uint32_t& r = nodes_[n].ref;
  if (r != kRefSaturated) ++r;
}

void BddManager::decRef(uint32_t n) {
  uint32_t& r = nodes_[n].ref;
  assert(r > 0);
  if (r != kRefSaturated) --r;
}

void BddManager::maybeGcOrSift() {
  if (opDepth_ > 0) return;
  // Cooperative cancellation point: we are at a public-op boundary with no
  // raw node indices live on any recursion stack, so unwinding here cannot
  // corrupt manager state.
  obs::checkAbort();
  // Census rendezvous with the sampling profiler: it raised a flag from
  // its own thread; we answer here, where nothing is mid-mutation, so the
  // sampler never reads manager structures concurrently. One relaxed load
  // when no profiler is running.
  if (obs::prof::censusRequested()) obs::prof::publishCensus(census());
  if (nodes_.size() - freeList_.size() > gcThreshold_) {
    size_t freed = gc();
    size_t live = nodes_.size() - freeList_.size();
    if (freed < live / 3) {
      gcThreshold_ = live * 2;
      HSIS_LOG_DEBUG("bdd.gc", "sweep reclaimed little, threshold raised",
                     {{"freed", freed},
                      {"live", live},
                      {"threshold", gcThreshold_}});
    } else {
      HSIS_LOG_DEBUG("bdd.gc", "sweep complete",
                     {{"freed", freed}, {"live", live}});
    }
  }
}

size_t BddManager::gc() {
  // Mark phase: every node reachable from an externally referenced node
  // survives. Iterative DFS over the arena.
  std::vector<bool> marked(nodes_.size(), false);
  marked[0] = marked[1] = true;
  std::vector<uint32_t> stack;
  std::vector<bool> freeSlot(nodes_.size(), false);
  for (uint32_t f : freeList_) freeSlot[f] = true;

  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (!freeSlot[i] && nodes_[i].ref > 0 && !marked[i]) {
      stack.assign(1, i);
      while (!stack.empty()) {
        uint32_t n = stack.back();
        stack.pop_back();
        if (marked[n]) continue;
        marked[n] = true;
        if (!isTerm(nodes_[n].lo) && !marked[nodes_[n].lo])
          stack.push_back(nodes_[n].lo);
        if (!isTerm(nodes_[n].hi) && !marked[nodes_[n].hi])
          stack.push_back(nodes_[n].hi);
      }
    }
  }

  size_t freed = 0;
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (!freeSlot[i] && !marked[i]) {
      uniqueRemove(i);
      nodes_[i].var = kNil;  // sentinel: slot is free (reorder scans rely on it)
      freeList_.push_back(i);
      ++freed;
    }
  }
  clearCaches();
  ++stats_.gcRuns;
  stats_.liveNodes = uniqueCount_;
  stats_.allocatedNodes = nodes_.size();
  obsGcRuns_.add();
  obsGcReclaimed_.add(freed);
  obsUniqueSize_.set(static_cast<int64_t>(uniqueCount_));
  return freed;
}

void BddManager::clearCaches() {
  for (auto& e : cache_) e = CacheEntry{};
}

obs::prof::BddCensus BddManager::census() const {
  obs::prof::BddCensus c;
  c.liveNodes = uniqueCount_;
  c.allocatedNodes = nodes_.size() - 2;  // terminals excluded
  c.freeNodes = freeList_.size();
  c.uniqueBuckets = uniqueTable_.size();
  c.cacheEntries = cache_.size();
  for (const CacheEntry& e : cache_) {
    if (e.k1 != ~0ull || e.k2 != ~0ull) ++c.cacheUsed;
  }
  c.cacheLookups = stats_.cacheLookups;
  c.cacheHits = stats_.cacheHits;
  c.gcRuns = stats_.gcRuns;
  c.reorderings = stats_.reorderings;
  c.peakLiveNodes = stats_.peakLiveNodes;

  std::vector<bool> freeSlot(nodes_.size(), false);
  for (uint32_t f : freeList_) freeSlot[f] = true;

  c.levelNodes.assign(perm_.size(), 0);
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (!freeSlot[i]) ++c.levelNodes[perm_[nodes_[i].var]];
  }

  // Dead = in the unique table but unreachable from any externally
  // referenced node: the same mark pass gc() runs, so deadNodes is exactly
  // what the next sweep would reclaim (and 0 right after one).
  std::vector<bool> marked(nodes_.size(), false);
  marked[0] = marked[1] = true;
  std::vector<uint32_t> stack;
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (!freeSlot[i] && nodes_[i].ref > 0 && !marked[i]) {
      stack.assign(1, i);
      while (!stack.empty()) {
        uint32_t n = stack.back();
        stack.pop_back();
        if (marked[n]) continue;
        marked[n] = true;
        if (!isTerm(nodes_[n].lo) && !marked[nodes_[n].lo])
          stack.push_back(nodes_[n].lo);
        if (!isTerm(nodes_[n].hi) && !marked[nodes_[n].hi])
          stack.push_back(nodes_[n].hi);
      }
    }
  }
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (!freeSlot[i] && !marked[i]) ++c.deadNodes;
  }
  return c;
}

// ------------------------------------------------------------ cache layer

bool BddManager::cacheLookup(Op op, uint32_t a, uint32_t b, uint32_t c,
                             uint32_t& out) {
  ++stats_.cacheLookups;
  obsCacheLookups_.add();
  uint64_t k1 = (static_cast<uint64_t>(a) << 32) | b;
  uint64_t k2 = (static_cast<uint64_t>(static_cast<uint8_t>(op)) << 32) | c;
  uint32_t slot = static_cast<uint32_t>(mix64(k1 ^ mix64(k2))) & cacheMask_;
  const CacheEntry& e = cache_[slot];
  if (e.k1 == k1 && e.k2 == k2) {
    out = e.result;
    ++stats_.cacheHits;
    obsCacheHits_.add();
    return true;
  }
  return false;
}

void BddManager::cacheInsert(Op op, uint32_t a, uint32_t b, uint32_t c,
                             uint32_t res) {
  uint64_t k1 = (static_cast<uint64_t>(a) << 32) | b;
  uint64_t k2 = (static_cast<uint64_t>(static_cast<uint8_t>(op)) << 32) | c;
  uint32_t slot = static_cast<uint32_t>(mix64(k1 ^ mix64(k2))) & cacheMask_;
  cache_[slot] = CacheEntry{k1, k2, res};
}

}  // namespace hsis
