// Shared-phase engine: per-thread contexts, the lock-free (CAS-inserted)
// unique table, the bump/free-chunk node allocator, and the two-tier
// stop-the-world safe-point protocol.
//
// Protocol summary (see DESIGN.md "Parallel engine" for the full writeup):
//
//   sharedInsideOps_  — threads currently executing an operation.
//   stwShallow_       — a coordinator wants to mutate structure *compatible
//                       with parked mid-recursion state* (unique-table
//                       growth). Workers poll the flag at every cache
//                       lookup / node creation and park in place; their raw
//                       edges stay valid because nothing moves or dies.
//   stwDeep_          — a coordinator wants to mutate structure that
//                       invalidates un-rooted intermediate results (GC,
//                       sifting, census). Only gated at op *boundaries*:
//                       the coordinator waits for sharedInsideOps_ == 0,
//                       so no recursion is ever suspended across a deep
//                       mutation.
//
// Election for either tier is a compare-exchange on the flag itself — the
// loser simply skips (the winner is doing equivalent work) or parks at the
// gate, so there is no coordinator lock to deadlock on.
//
// Memory-model notes:
//  - enterSharedOp increments sharedInsideOps_ (seq_cst) and *then* loads
//    both flags (seq_cst): the Dekker-style store-load pairing with the
//    coordinator's flag-store/count-load guarantees one side sees the
//    other.
//  - A bucket head is the only synchronization point of the unique table:
//    publishing a node is a release-CAS on the head, and one acquire load
//    of the head covers every field of every node on the chain (fields and
//    the chain link are written before publication and never change while
//    shared — removal happens only under stop-the-world).
//  - The coordinator clears a flag under parkMu_ (parked threads resume
//    with mutex-given happens-before) with a seq_cst store (op-boundary
//    threads synchronize through their seq_cst gate loads).
#include "bdd/bdd.hpp"

#include <algorithm>
#include <stdexcept>

namespace hsis {

namespace {

/// Unique-table bucket of a node triple — must match bdd_manager.cpp.
inline uint32_t uniqueBucketOf(uint32_t var, uint32_t lo, uint32_t hi,
                               uint32_t mask) {
  uint64_t h = static_cast<uint64_t>(var) * 0x9e3779b97f4a7c15ull ^
               static_cast<uint64_t>(lo) * 0xff51afd7ed558ccdull ^
               static_cast<uint64_t>(hi) * 0xc4ceb9fe1a85ec53ull;
  return static_cast<uint32_t>(h >> 32) & mask;
}

/// Per-manager shared epochs are drawn from one process-wide counter so a
/// stale thread-local binding can never collide with a new manager that
/// happens to reuse the same address.
std::atomic<uint64_t> g_sharedEpochSource{0};

struct TlsCtxBinding {
  const void* mgr = nullptr;
  uint64_t epoch = 0;
  void* ctx = nullptr;
};
/// One-entry cache: the common case is a thread hammering a single shared
/// manager. A miss (first touch, or alternating between two shared
/// managers) falls back to the mutex-guarded registry.
thread_local TlsCtxBinding t_ctxBinding;

}  // namespace

// ------------------------------------------------------- thread contexts

BddManager::ThreadCtx& BddManager::sharedCtx() {
  if (t_ctxBinding.mgr == this && t_ctxBinding.epoch == sharedEpoch_)
    return *static_cast<ThreadCtx*>(t_ctxBinding.ctx);
  ThreadCtx& tc = attachThreadCtx();
  t_ctxBinding = TlsCtxBinding{this, sharedEpoch_, &tc};
  return tc;
}

BddManager::ThreadCtx& BddManager::attachThreadCtx() {
  std::lock_guard<std::mutex> g(ctxMu_);
  auto it = ctxByThread_.find(std::this_thread::get_id());
  if (it != ctxByThread_.end()) return *it->second;
  workerCtxs_.push_back(std::make_unique<ThreadCtx>());
  ThreadCtx* tc = workerCtxs_.back().get();
  tc->cache.assign(size_t{1} << 13, CacheSet{});  // 2^14 entries
  tc->cacheMask = static_cast<uint32_t>(tc->cache.size() - 1);
  ctxByThread_.emplace(std::this_thread::get_id(), tc);
  return *tc;
}

// ------------------------------------------------------------ shared phase

void BddManager::beginShared(size_t maxNodes) {
  if (sharedMode_)
    throw std::logic_error("BddManager::beginShared: already shared");
  if (mainCtx_.opDepth != 0)
    throw std::logic_error("BddManager::beginShared: operation active");

  // Index space is 31 bits (bit 31 is the complement mark).
  size_t cap = std::min<size_t>(maxNodes, kComplBit);
  cap = std::max(cap, nodes_.size() + (size_t(1) << 16));
  nodes_.reserve(cap);
  sharedCapacity_ = cap;

  // Pre-grow the arena window so the first burst of allocations does not
  // immediately serialize on growMu_. The bump pointer starts at the old
  // arena end; slots below it stay reachable through the global free list.
  size_t initial =
      std::min(cap, std::max(nodes_.size() * 2, size_t(1) << 16));
  uint32_t top = static_cast<uint32_t>(nodes_.size());
  nodes_.resize(initial);
  nodeTop_.store(top, std::memory_order_relaxed);
  arenaLimit_.store(static_cast<uint32_t>(initial), std::memory_order_relaxed);

  if (!shardCounts_) shardCounts_ = std::make_unique<ShardCount[]>(kNumShards);
  for (uint32_t s = 0; s < kNumShards; ++s)
    shardCounts_[s].n.store(0, std::memory_order_relaxed);

  sharedInsideOps_.store(0, std::memory_order_relaxed);
  parkedShallow_.store(0, std::memory_order_relaxed);
  stwShallow_.store(false, std::memory_order_relaxed);
  stwDeep_.store(false, std::memory_order_relaxed);

  sharedEpoch_ = g_sharedEpochSource.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    // The calling thread keeps the main context (with its warm cache);
    // worker threads attach fresh ones lazily.
    std::lock_guard<std::mutex> g(ctxMu_);
    ctxByThread_.clear();
    ctxByThread_.emplace(std::this_thread::get_id(), &mainCtx_);
  }
  t_ctxBinding = TlsCtxBinding{this, sharedEpoch_, &mainCtx_};
  sharedMode_ = true;
}

void BddManager::endShared() {
  if (!sharedMode_)
    throw std::logic_error("BddManager::endShared: not in a shared phase");
  // Caller contract: every worker thread has finished (joined) — there is
  // no concurrent activity on this manager anymore.
  assert(mainCtx_.opDepth == 0 && "endShared with an operation still active");
  flushObs(mainCtx_);
  for (auto& c : workerCtxs_) {
    assert(c->opDepth == 0 && "endShared with an operation still active");
    flushObs(*c);
  }

  // Fold the exact occupancy back into uniqueCount_ (no removals happen in
  // a shared phase, so base + shard deltas *is* exact).
  int64_t delta = 0;
  for (uint32_t s = 0; s < kNumShards; ++s) {
    delta += shardCounts_[s].n.load(std::memory_order_relaxed);
    shardCounts_[s].n.store(0, std::memory_order_relaxed);
  }
  uniqueCount_ = static_cast<size_t>(static_cast<int64_t>(uniqueCount_) + delta);
  if (uniqueCount_ > stats_.peakLiveNodes) stats_.peakLiveNodes = uniqueCount_;

  // Consolidate free slots: per-thread chunks, then the virgin region the
  // bump allocator never reached — without this the serial allocator would
  // leak every untouched slot of the resized arena.
  freeList_.insert(freeList_.end(), mainCtx_.freeChunk.begin(),
                   mainCtx_.freeChunk.end());
  mainCtx_.freeChunk.clear();
  for (auto& c : workerCtxs_) {
    freeList_.insert(freeList_.end(), c->freeChunk.begin(), c->freeChunk.end());
    c->freeChunk.clear();
  }
  for (uint32_t i = nodeTop_.load(std::memory_order_relaxed);
       i < nodes_.size(); ++i)
    freeList_.push_back(i);

  // Retire worker contexts (keep the main one and its warm cache). Their
  // lifetime tallies move to the retired accumulators so stats()/census()
  // totals do not go backwards.
  {
    std::lock_guard<std::mutex> g(ctxMu_);
    for (auto& c : workerCtxs_) {
      retiredLookups_ += c->cacheLookups;
      retiredHits_ += c->cacheHits;
      retiredCreated_ += c->created;
      retiredAged_ += c->cacheAged;
    }
    workerCtxs_.clear();
    ctxByThread_.clear();
  }

  sharedMode_ = false;
  fj_ = nullptr;
  obsUniqueSize_.set(static_cast<int64_t>(uniqueCount_));
  obsUniquePeak_.updateMax(static_cast<int64_t>(stats_.peakLiveNodes));
}

void BddManager::setParallel(par::ForkJoin* fj, size_t cutoffNodes,
                             int splitDepth) {
  fj_ = fj;
  parCutoff_ = cutoffNodes;
  parSplitDepth_ = splitDepth;
}

// --------------------------------------------------------- safe-point gate

void BddManager::enterSharedOp(ThreadCtx& tc) {
  for (;;) {
    sharedInsideOps_.fetch_add(1, std::memory_order_seq_cst);
    if (!stwShallow_.load(std::memory_order_seq_cst) &&
        !stwDeep_.load(std::memory_order_seq_cst)) {
      tc.inside = true;
      return;
    }
    sharedInsideOps_.fetch_sub(1, std::memory_order_seq_cst);
    std::unique_lock<std::mutex> lk(parkMu_);
    parkCv_.wait(lk, [&] {
      return !stwShallow_.load(std::memory_order_relaxed) &&
             !stwDeep_.load(std::memory_order_relaxed);
    });
  }
}

void BddManager::leaveSharedOp(ThreadCtx& tc) {
  tc.inside = false;
  sharedInsideOps_.fetch_sub(1, std::memory_order_seq_cst);
}

void BddManager::enterSharedTask(ThreadCtx& tc) {
  // Fork-join tasks are continuations of an operation that is already
  // inside (the forker holds the join), so they gate on the shallow flag
  // only: parking them on a deep request would deadlock the joiner the
  // deep coordinator is itself waiting out.
  for (;;) {
    sharedInsideOps_.fetch_add(1, std::memory_order_seq_cst);
    if (!stwShallow_.load(std::memory_order_seq_cst)) {
      tc.inside = true;
      return;
    }
    sharedInsideOps_.fetch_sub(1, std::memory_order_seq_cst);
    std::unique_lock<std::mutex> lk(parkMu_);
    parkCv_.wait(lk,
                 [&] { return !stwShallow_.load(std::memory_order_relaxed); });
  }
}

void BddManager::sharedSafePointSlow(ThreadCtx& tc) {
  // The coordinator's own recursion (e.g. mkNode during a sift swap while
  // it holds the deep STW, or the shallow window it opened itself) must
  // never park on its own flag.
  if (tc.stwCoordinator) return;
  parkedShallow_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lk(parkMu_);
    parkCv_.wait(lk,
                 [&] { return !stwShallow_.load(std::memory_order_relaxed); });
  }
  parkedShallow_.fetch_sub(1, std::memory_order_seq_cst);
}

bool BddManager::stwShallowRun(ThreadCtx& tc, const std::function<void()>& fn) {
  bool expected = false;
  if (!stwShallow_.compare_exchange_strong(expected, true,
                                           std::memory_order_seq_cst))
    return false;
  // Wait until every in-op thread except (possibly) ourselves is parked.
  // While the flag is up, sharedInsideOps_ can only fall (entry is gated)
  // and parkedShallow_ can only rise, so one consistent observation of
  // parked >= inside - self proves quiescence.
  int self = tc.inside ? 1 : 0;
  while (parkedShallow_.load(std::memory_order_seq_cst) <
         sharedInsideOps_.load(std::memory_order_seq_cst) - self)
    std::this_thread::yield();
  struct Clear {
    BddManager* m;
    ~Clear() {
      {
        std::lock_guard<std::mutex> g(m->parkMu_);
        m->stwShallow_.store(false, std::memory_order_seq_cst);
      }
      m->parkCv_.notify_all();
    }
  } clear{this};
  fn();
  return true;
}

bool BddManager::stwDeepRun(ThreadCtx& tc, const std::function<void()>& fn) {
  assert(tc.opDepth == 0 && "deep stop-the-world from inside an operation");
  bool expected = false;
  if (!stwDeep_.compare_exchange_strong(expected, true,
                                        std::memory_order_seq_cst))
    return false;
  while (sharedInsideOps_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  tc.stwCoordinator = true;
  struct Clear {
    BddManager* m;
    ThreadCtx* tc;
    ~Clear() {
      tc->stwCoordinator = false;
      {
        std::lock_guard<std::mutex> g(m->parkMu_);
        m->stwDeep_.store(false, std::memory_order_seq_cst);
      }
      m->parkCv_.notify_all();
    }
  } clear{this, &tc};
  fn();
  return true;
}

// ------------------------------------------------------------- allocation

uint32_t BddManager::allocSlotShared(ThreadCtx& tc) {
  if (!tc.freeChunk.empty()) {
    uint32_t idx = tc.freeChunk.back();
    tc.freeChunk.pop_back();
    return idx;
  }
  {
    std::lock_guard<std::mutex> g(freeMu_);
    if (!freeList_.empty()) {
      size_t take = std::min<size_t>(freeList_.size(), 128);
      tc.freeChunk.assign(freeList_.end() - static_cast<ptrdiff_t>(take),
                          freeList_.end());
      freeList_.resize(freeList_.size() - take);
      uint32_t idx = tc.freeChunk.back();
      tc.freeChunk.pop_back();
      return idx;
    }
  }
  uint32_t idx = nodeTop_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= arenaLimit_.load(std::memory_order_acquire))
    growArenaShared(idx);  // returns (or throws) with arenaLimit_ > idx
  return idx;
}

void BddManager::retireSlotShared(ThreadCtx& tc, uint32_t idx) {
  // A candidate that lost its insertion race: reset the sentinel so a GC
  // sweep cannot double-free the slot, and recycle it thread-locally.
  Node& nd = nodes_[idx];
  nd.var = kNil;
  nd.next = kNil;
  tc.freeChunk.push_back(idx);
}

void BddManager::growArenaShared(uint32_t needIdx) {
  std::lock_guard<std::mutex> g(growMu_);
  if (arenaLimit_.load(std::memory_order_relaxed) > needIdx) return;
  size_t want = std::max(nodes_.size() * 2, static_cast<size_t>(needIdx) + 1);
  if (want > sharedCapacity_) want = sharedCapacity_;
  if (want <= needIdx)
    throw std::length_error(
        "BddManager: shared arena capacity exhausted (raise beginShared "
        "maxNodes)");
  nodes_.resize(want);  // within reserved capacity: never reallocates
  arenaLimit_.store(static_cast<uint32_t>(want), std::memory_order_release);
}

size_t BddManager::approxLive() const {
  if (!shardCounts_) return uniqueCount_;
  int64_t delta = 0;
  for (uint32_t s = 0; s < kNumShards; ++s)
    delta += shardCounts_[s].n.load(std::memory_order_relaxed);
  int64_t v = static_cast<int64_t>(uniqueCount_) + delta;
  return v < 0 ? 0 : static_cast<size_t>(v);
}

// ------------------------------------------------------ lock-free mkNode

uint32_t BddManager::mkNodeShared(ThreadCtx& tc, BddVar var, uint32_t lo,
                                  uint32_t hi) {
  // Caller (mkNode) already collapsed lo == hi and sign-factored the low
  // edge; `lo` is regular here and the result is a plain index.
  sharedSafePoint(tc);  // before reading the mask: it may change while parked
  for (;;) {
    uint32_t bucket = uniqueBucketOf(var, lo, hi, uniqueMask_);
    std::atomic_ref<uint32_t> headRef(uniqueTable_[bucket]);
    uint32_t head = headRef.load(std::memory_order_acquire);
    for (uint32_t n = head; n != kNil; n = nodes_[n].next) {
      const Node& nd = nodes_[n];
      if (nd.var == var && nd.lo == lo && nd.hi == hi) return n;
    }
    uint32_t idx = allocSlotShared(tc);
    Node& nd = nodes_[idx];
    nd.var = var;
    nd.lo = lo;
    nd.hi = hi;
    nd.ref = 0;
    nd.next = head;  // plain writes: published (only) by the CAS below
    if (headRef.compare_exchange_strong(head, idx, std::memory_order_release,
                                        std::memory_order_relaxed)) {
      shardCounts_[bucket & (kNumShards - 1)].n.fetch_add(
          1, std::memory_order_relaxed);
      ++tc.created;
      if (++tc.sinceGrowthCheck >= 256) {
        tc.sinceGrowthCheck = 0;
        size_t live = approxLive();
        if (live > uniqueTable_.size()) growUniqueShared(tc);
        if (live > tc.cache.size() * 2) growCache(tc);
      }
      return idx;
    }
    // Lost the race on this bucket: someone else published first (possibly
    // the very node we wanted). Retire the candidate and retry from the new
    // head — bounded by actual contention, no unbounded spin.
    retireSlotShared(tc, idx);
  }
}

void BddManager::growUniqueShared(ThreadCtx& tc) {
  stwShallowRun(tc, [&] {
    // Re-check under quiescence: a concurrent winner may have grown first.
    if (approxLive() <= uniqueTable_.size()) return;
    growUnique();  // serial wholesale rebuild — everyone is parked
  });
  // Election lost: the winner is rebuilding (or just did); the next sampled
  // growth check re-evaluates. Nothing to do.
}

}  // namespace hsis
