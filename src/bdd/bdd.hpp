// Reduced Ordered Binary Decision Diagrams with complement edges.
//
// This is the implicit-representation substrate of HSIS: every relation,
// state set, and transition relation in the verification engine is a Bdd
// managed by a BddManager.
//
// Design notes:
//  - An *edge* is a 32-bit word: bits 0..30 are a node index into a single
//    arena, bit 31 is a complement ("negate the function below") mark in
//    the Brace–Rudell–Bryant style. Only the ONE terminal exists (arena
//    slot 1); FALSE is the complemented edge to it. Negation is an O(1)
//    bit flip and f / !f share every node.
//  - Canonical form: the low (else) edge of a node is never complemented.
//    mkNode restores the invariant by flipping both children and
//    complementing the returned edge, so structural equality of edges is
//    functional equality, including across negation.
//  - Handles (`Bdd`) are reference-counted RAII objects; garbage collection
//    is mark-and-sweep from externally referenced nodes and runs only at
//    public-API entry points (safe points), never inside a recursion. The
//    computed cache survives collection: the sweep drops only entries that
//    mention a dead node and keeps everything else, so fixpoint loops do
//    not restart cold after every GC.
//  - Variable order is a permutation `perm` (variable id -> level) so that
//    dynamic reordering (sifting) never invalidates node indices.
//
// Concurrency (HermesBDD-style, see DESIGN.md "Parallel engine"):
//  - A manager is single-threaded by default; the serial paths pay nothing
//    for the machinery below beyond a predicted-false branch.
//  - beginShared()/endShared() bracket a *shared phase* during which any
//    number of threads may run operations concurrently on this manager:
//      * the unique table is CAS-inserted (one acquire/release point per
//        bucket head; the 64 segment counters track occupancy per shard),
//      * every thread owns a private computed cache and free-slot chunk
//        (a ThreadCtx, attached lazily on first use),
//      * the node arena never reallocates: beginShared reserves capacity
//        up front and growth is a resize-in-place under a shallow
//        stop-the-world, so raw Node pointers and handle refcounts stay
//        valid at all times,
//      * structure mutations (arena/table growth: *shallow*; GC, sifting,
//        census: *deep*) quiesce workers through the engine-wide safe-point
//        protocol generalized from the PR 3 census rendezvous: workers poll
//        one relaxed flag per cache lookup / node creation and park there,
//      * reference counts flip to std::atomic_ref CAS loops (saturating).
//  - setParallel() additionally enables the fine-grained fork-join apply:
//    and/ite/andExists split on cofactor subproblems onto a ForkJoin task
//    deque above a node-count cutoff; below it recursion stays serial.
#pragma once

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "obs/prof.hpp"

namespace hsis {

class BddManager;
class BddTransfer;
namespace par {
class ForkJoin;
}

using BddVar = uint32_t;

/// A handle to a BDD edge (node index + complement bit). Copying/destroying
/// maintains the external reference count on the underlying node. A
/// default-constructed handle is "null" and belongs to no manager.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& o);
  Bdd(Bdd&& o) noexcept;
  Bdd& operator=(const Bdd& o);
  Bdd& operator=(Bdd&& o) noexcept;
  ~Bdd();

  [[nodiscard]] bool isNull() const { return mgr_ == nullptr; }
  [[nodiscard]] bool isZero() const;
  [[nodiscard]] bool isOne() const;
  [[nodiscard]] bool isConstant() const { return isZero() || isOne(); }

  /// Structural equality (canonical, so also functional equality).
  bool operator==(const Bdd& o) const {
    return mgr_ == o.mgr_ && idx_ == o.idx_;
  }
  bool operator!=(const Bdd& o) const { return !(*this == o); }

  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;
  Bdd& operator&=(const Bdd& o);
  Bdd& operator|=(const Bdd& o);
  Bdd& operator^=(const Bdd& o);
  /// f.implies(g): the BDD of !f | g.
  [[nodiscard]] Bdd implies(const Bdd& o) const;
  /// Containment test: does f -> g hold everywhere? (No result BDD built.)
  [[nodiscard]] bool leq(const Bdd& o) const;

  /// Top variable id (not level). Precondition: non-constant.
  [[nodiscard]] BddVar var() const;
  /// Cofactors as seen through this edge (complement bit applied).
  [[nodiscard]] Bdd low() const;
  [[nodiscard]] Bdd high() const;

  [[nodiscard]] BddManager* manager() const { return mgr_; }
  /// The raw edge word (node index | complement bit). Edges compare
  /// canonically; use only for identity/debugging, not arena arithmetic.
  [[nodiscard]] uint32_t index() const { return idx_; }
  /// Number of nodes in this BDD (including the terminal when reached).
  [[nodiscard]] size_t nodeCount() const;

 private:
  friend class BddManager;
  Bdd(BddManager* m, uint32_t i);

  BddManager* mgr_ = nullptr;
  uint32_t idx_ = 0;
};

/// Per-manager statistics view. The counters are backed by the hsis_obs
/// registry (which additionally aggregates them across all managers under
/// the `bdd.*` metric names); this struct keeps the legacy accessor shape.
struct BddStats {
  size_t liveNodes = 0;      ///< nodes currently in the unique table
  size_t allocatedNodes = 0; ///< arena size (live + freed slots)
  size_t gcRuns = 0;
  size_t cacheLookups = 0;
  size_t cacheHits = 0;
  size_t peakLiveNodes = 0;
  size_t reorderings = 0;
};

class BddManager {
 public:
  explicit BddManager(uint32_t numVars = 0);
  ~BddManager();
  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // ---- variables and constants ----

  /// Create a new variable at the bottom of the current order.
  BddVar newVar();
  /// Create a new variable at the given level, shifting others down.
  BddVar newVarAtLevel(uint32_t level);
  [[nodiscard]] uint32_t numVars() const { return static_cast<uint32_t>(perm_.size()); }
  [[nodiscard]] Bdd bddVar(BddVar v);
  /// Literal: the variable if `positive`, else its negation.
  [[nodiscard]] Bdd bddLiteral(BddVar v, bool positive);
  [[nodiscard]] Bdd bddOne();
  [[nodiscard]] Bdd bddZero();

  [[nodiscard]] uint32_t level(BddVar v) const { return perm_[v]; }
  [[nodiscard]] BddVar varAtLevel(uint32_t l) const { return invPerm_[l]; }
  /// The current order as a level -> variable sequence (a copy; feed it to
  /// another manager's setOrder to replicate this manager's order).
  [[nodiscard]] std::vector<BddVar> varOrder() const { return invPerm_; }

  // ---- core operations ----

  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  Bdd andOp(const Bdd& f, const Bdd& g);
  Bdd orOp(const Bdd& f, const Bdd& g);
  Bdd xorOp(const Bdd& f, const Bdd& g);
  /// O(1): flips the complement bit, allocates nothing.
  Bdd notOp(const Bdd& f);

  /// Existentially quantify all variables of `cube` (a positive-literal
  /// conjunction) out of f.
  Bdd exists(const Bdd& f, const Bdd& cube);
  Bdd forall(const Bdd& f, const Bdd& cube);
  /// Relational product: exists(f & g, cube) without building f & g.
  /// This is the workhorse of image computation and early quantification.
  Bdd andExists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Cofactor with respect to a single literal.
  Bdd cofactor(const Bdd& f, BddVar v, bool positive);
  /// Coudert-Madre generalized cofactor ("constrain"). c must be != 0.
  Bdd constrain(const Bdd& f, const Bdd& c);
  /// Coudert-Madre restrict: like constrain but sibling-substitution based,
  /// never introduces variables outside supp(f) ∪ supp(c); used for
  /// don't-care minimization. c must be != 0.
  Bdd restrict(const Bdd& f, const Bdd& c);

  /// Rename variables: map[v] gives the replacement variable for v (identity
  /// entries allowed; map may be shorter than numVars, treated as identity
  /// beyond its size). Replacement variables must not occur in f unless they
  /// are fixed points of the map restricted to supp(f) — the usual use is
  /// swapping disjoint present/next-state rails.
  Bdd permute(const Bdd& f, const std::vector<BddVar>& map);

  [[nodiscard]] bool leq(const Bdd& f, const Bdd& g);

  // ---- structural queries ----

  std::vector<BddVar> support(const Bdd& f);
  Bdd supportCube(const Bdd& f);
  /// Number of satisfying assignments over an `nvars`-variable space.
  /// support(f) must fit inside that space: throws std::invalid_argument
  /// when f depends on more than `nvars` variables (the density recursion
  /// is level-independent, so a too-small space would silently undercount).
  double satCount(const Bdd& f, uint32_t nvars);
  /// satCount over an explicit variable set: the assignment space is
  /// exactly `vars` (each variable at most once). Throws
  /// std::invalid_argument when support(f) is not a subset of `vars`.
  double satCount(const Bdd& f, std::span<const BddVar> vars);
  /// One satisfying cube as a vector indexed by variable id:
  /// -1 don't-care, 0 negative, 1 positive. Empty if f == 0.
  std::vector<int8_t> pickCube(const Bdd& f);
  /// Build the conjunction of literals described by `assign` (same encoding
  /// as pickCube; -1 entries skipped).
  Bdd cubeFromAssignment(std::span<const int8_t> assign);
  size_t nodeCount(const Bdd& f) const;
  size_t sharedNodeCount(std::span<const Bdd> roots) const;

  // ---- reordering ----

  /// Sifting: move each variable through the order, keep the best position.
  /// Handles and cached results remain valid (swaps preserve node
  /// functions in place). In a shared phase this quiesces every worker
  /// through a deep stop-the-world before touching the table.
  void sift();
  /// Reorder so the given variables sit at the top in the given sequence.
  void setOrder(const std::vector<BddVar>& order);
  void setMaxGrowth(double g) { maxGrowth_ = g; }

  // ---- shared (multi-threaded) phase ----

  /// Enter shared mode: until endShared(), any thread may run operations on
  /// this manager concurrently. `maxNodes` bounds the arena for the whole
  /// phase (the arena is reserved up front and never reallocates, so raw
  /// node storage stays put while lock-free readers are active); exceeding
  /// it throws std::length_error. Must be called with no operation active.
  void beginShared(size_t maxNodes = size_t(1) << 22);
  /// Leave shared mode. All worker threads must have finished (joined);
  /// their caches are dropped, their tallies flushed, and the free lists
  /// consolidated. The manager is single-threaded again afterwards.
  void endShared();
  [[nodiscard]] bool sharedMode() const { return sharedMode_; }
  /// Enable the fine-grained fork-join parallel apply inside a shared
  /// phase: and/ite/andExists subproblems above `cutoffNodes` (operand
  /// size) split on their top-variable cofactors onto `fj` until
  /// `splitDepth` levels deep. Pass nullptr to disable.
  void setParallel(par::ForkJoin* fj, size_t cutoffNodes = 2048,
                   int splitDepth = 3);

  // ---- memory ----

  size_t gc();
  [[nodiscard]] size_t liveNodeCount() const {
    return sharedMode_ ? approxLive() : uniqueCount_;
  }
  /// Point-in-time statistics (live/allocated refreshed on each call).
  [[nodiscard]] const BddStats& stats() const;
  /// Exact population census: live nodes per level, unique-table and
  /// cache occupancy, lifetime event totals, and the dead-node count a
  /// mark-and-sweep would reclaim right now. O(arena + cache) scan — meant
  /// for the sampling profiler's rendezvous (at most one per tick) and for
  /// tests, not for hot paths. Must be called at a point where no operation
  /// is mid-recursion: any public-API boundary in serial mode, or under the
  /// deep stop-the-world in a shared phase (maybeGcOrSift arranges both).
  [[nodiscard]] obs::prof::BddCensus census() const;
  void clearCaches();

  // ---- io ----

  std::string toDot(std::span<const Bdd> roots,
                    std::span<const std::string> rootNames,
                    const std::vector<std::string>& varNames = {}) const;

 private:
  friend class Bdd;
  friend class BddTransfer;

  static constexpr uint32_t kTermLevel = 0xFFFFFFFFu;
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  struct Node {
    // NSDMI defaults make a value-initialized slot read as *free*
    // (var == kNil): the shared-phase arena is resized ahead of the bump
    // allocator, and every scan recognizes untouched slots by the sentinel.
    BddVar var = kNil;
    uint32_t lo = 0, hi = 0;  ///< child edges; `lo` is always a regular edge
    uint32_t next = kNil;     ///< unique-table chain
    uint32_t ref = 0;         ///< external reference count (saturating)
  };

  /// The age bit lives in k2's top bit (operand c occupies bits 0..31, the
  /// op byte bits 32..39; 40..62 are always zero, 63 is free).
  static constexpr uint64_t kCacheAgeBit = 1ull << 63;

  struct CacheEntry {
    uint64_t k1 = ~0ull, k2 = ~0ull;
    uint32_t result = 0;
  };

  /// A 2-way set, padded and aligned to one cache line so a probe (which
  /// scans both ways on the common miss) touches exactly one line — same
  /// memory traffic as a direct-mapped cache.
  struct alignas(64) CacheSet {
    CacheEntry way[2];
  };
  static_assert(sizeof(CacheSet) == 64);

  /// One computed-cache probe: keys, slot, and the cache generation the
  /// slot was computed under. A lookup fills it; a later insert reuses the
  /// slot without rehashing unless the cache was grown in between.
  struct CacheProbe {
    uint64_t k1 = 0, k2 = 0;
    uint32_t slot = 0;
    uint64_t gen = 0;
  };

  /// Per-thread operation state. In serial mode there is exactly one (the
  /// main context); a shared phase attaches one per participating thread,
  /// lazily, on first use. The computed cache is *private to the thread* —
  /// the HermesBDD recipe — so lookups and inserts never synchronize.
  struct ThreadCtx {
    std::vector<CacheSet> cache;  ///< 2-way sets; capacity = size() * 2 entries
    uint32_t cacheMask = 0;       ///< set count - 1 (set count is a power of 2)
    uint64_t cacheGen = 0;  ///< bumped whenever slot numbering changes

    /// Private chunk of free arena slots (refilled from the global free
    /// list under freeMu_, or carved from the bump pointer).
    std::vector<uint32_t> freeChunk;

    // Plain per-thread tallies; flushObs batches them into the shared
    // relaxed-atomic registry counters once per outermost operation.
    uint64_t cacheLookups = 0, cacheHits = 0, created = 0;
    uint64_t cacheAged = 0;  ///< age-steered victim choices (2-way cache)
    uint64_t flushedLookups = 0, flushedHits = 0, flushedCreated = 0;
    uint64_t flushedAged = 0;

    int opDepth = 0;        ///< >0 while a public op is active on this thread
    bool inside = false;    ///< currently counted in sharedInsideOps_
    bool stwCoordinator = false;  ///< owns the current stop-the-world
    uint32_t sinceGrowthCheck = 0;
  };

  // ---- edges ----
  static constexpr uint32_t kComplBit = 0x80000000u;
  static constexpr uint32_t kOneEdge = 1u;
  static constexpr uint32_t kZeroEdge = kOneEdge | kComplBit;

  /// Node index of an edge.
  [[nodiscard]] static constexpr uint32_t eIdx(uint32_t e) { return e & ~kComplBit; }
  /// Is the edge complemented?
  [[nodiscard]] static constexpr bool eIsNeg(uint32_t e) { return (e & kComplBit) != 0; }
  /// Negation: O(1) bit flip.
  [[nodiscard]] static constexpr uint32_t eNot(uint32_t e) { return e ^ kComplBit; }
  /// The complement bit of an edge (0 or kComplBit), for sign propagation.
  [[nodiscard]] static constexpr uint32_t eSign(uint32_t e) { return e & kComplBit; }

  static constexpr uint32_t kRefSaturated = 0xFFFFFFFFu;

  // node layer
  uint32_t mkNode(BddVar var, uint32_t lo, uint32_t hi);
  uint32_t mkNodeShared(ThreadCtx& tc, BddVar var, uint32_t lo, uint32_t hi);
  uint32_t allocSlotShared(ThreadCtx& tc);
  void retireSlotShared(ThreadCtx& tc, uint32_t idx);
  void uniqueInsert(uint32_t n);
  void uniqueRemove(uint32_t n);
  void growUnique();
  void growCache(ThreadCtx& tc);
  void maybeGcOrSift();
  void incRef(uint32_t e) {
    uint32_t& r = nodes_[eIdx(e)].ref;
    if (!sharedMode_) [[likely]] {
      if (r != kRefSaturated) ++r;
      return;
    }
    std::atomic_ref<uint32_t> ar(r);
    uint32_t cur = ar.load(std::memory_order_relaxed);
    while (cur != kRefSaturated &&
           !ar.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed)) {
    }
  }
  void decRef(uint32_t e) {
    uint32_t& r = nodes_[eIdx(e)].ref;
    if (!sharedMode_) [[likely]] {
      assert(r > 0);
      if (r != kRefSaturated) --r;
      return;
    }
    std::atomic_ref<uint32_t> ar(r);
    uint32_t cur = ar.load(std::memory_order_relaxed);
    while (cur != kRefSaturated &&
           !ar.compare_exchange_weak(cur, cur - 1, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] bool isTerm(uint32_t e) const { return eIdx(e) <= 1; }
  [[nodiscard]] uint32_t nodeLevel(uint32_t e) const {
    return isTerm(e) ? kTermLevel : perm_[nodes_[eIdx(e)].var];
  }

  // GC internals. markReachable runs the shared mark DFS (every node
  // reachable from an externally referenced one, terminals always marked)
  // used by gc(), census(), and the cache keep-alive sweep. Free arena
  // slots are recognized by their var == kNil sentinel — no separate
  // free-slot mask pass. Byte mask, not vector<bool>: the sweep and
  // keep-alive loops read it per node/entry.
  [[nodiscard]] std::vector<uint8_t> markReachable() const;
  /// Drop computed-cache entries that mention a dead node; keep the rest.
  /// Sweeps one thread's cache; gc() applies it to every attached context.
  void cacheKeepAlive(ThreadCtx& tc, const std::vector<uint8_t>& marked);
  /// The sweep itself; callers guarantee quiescence (serial mode, or the
  /// deep stop-the-world / coordinator role in a shared phase).
  size_t gcImpl();

  /// Push the plain per-thread tallies (lookups, hits, nodes created,
  /// age-steered evictions) into the shared registry metrics — one batch of
  /// relaxed atomic adds per outermost operation; the recursive workers
  /// themselves never touch an atomic. Gauges (unique size/peak) are
  /// updated here only in serial mode; a shared phase refreshes them at
  /// stop-the-world points instead.
  void flushObs(ThreadCtx& tc);

  // ---- shared-phase engine (bdd_concurrent.cpp) ----

  /// The calling thread's context: the main context in serial mode, the
  /// lazily attached per-thread one in a shared phase.
  ThreadCtx& ctx() {
    if (!sharedMode_) [[likely]] return mainCtx_;
    return sharedCtx();
  }
  [[nodiscard]] const ThreadCtx& ctx() const {
    return const_cast<BddManager*>(this)->ctx();
  }
  ThreadCtx& sharedCtx();
  ThreadCtx& attachThreadCtx();

  /// Op-boundary gate: counts the thread into sharedInsideOps_, parking
  /// first while any stop-the-world (shallow or deep) is pending.
  void enterSharedOp(ThreadCtx& tc);
  void leaveSharedOp(ThreadCtx& tc);
  /// Mid-op variant for fork-join task execution: the forking thread is
  /// already inside and holds the join, so tasks gate on the *shallow*
  /// flag only — parking them on a deep request would deadlock the joiner
  /// the deep coordinator is waiting on.
  void enterSharedTask(ThreadCtx& tc);

  /// Polled at every cache lookup and node creation (one relaxed load when
  /// idle). When a shallow stop-the-world is pending the thread steps out
  /// of sharedInsideOps_, parks, and steps back in — mid-recursion state
  /// (raw edges) stays valid because shallow mutations never move or free
  /// a node.
  void sharedSafePoint(ThreadCtx& tc) {
    if (!stwShallow_.load(std::memory_order_relaxed)) return;
    sharedSafePointSlow(tc);
  }
  void sharedSafePointSlow(ThreadCtx& tc);

  /// Run `fn` as the shallow stop-the-world coordinator (in-op mutations:
  /// arena or unique-table growth). Returns false when the election was
  /// lost — the winner is doing equivalent work; re-check and retry.
  bool stwShallowRun(ThreadCtx& tc, const std::function<void()>& fn);
  /// Run `fn` as the deep stop-the-world coordinator (op-boundary
  /// mutations: GC, sifting, census). Returns false when the election was
  /// lost. Must be called with tc.opDepth == 0.
  bool stwDeepRun(ThreadCtx& tc, const std::function<void()>& fn);

  void growUniqueShared(ThreadCtx& tc);
  /// Arena growth needs no stop-the-world: the backing store was reserved
  /// at beginShared, so resize-in-place touches only fresh slots and the
  /// vector's end marker — which no concurrent reader looks at (they index
  /// through the data pointer, bounded by arenaLimit_). growMu_ serializes
  /// growers against each other.
  void growArenaShared(uint32_t needIdx);

  [[nodiscard]] size_t approxLive() const;
  [[nodiscard]] size_t arenaEnd() const {
    return sharedMode_ ? nodeTop_.load(std::memory_order_relaxed)
                       : nodes_.size();
  }

  /// RAII guard for a public operation: GC stays deferred while the
  /// recursion holds raw node indices, and the registry metrics are
  /// flushed exactly once when the outermost operation completes. In a
  /// shared phase the outermost entry/exit also gates on the stop-the-world
  /// flags (unless this thread *is* the coordinator).
  class ScopedOp {
   public:
    explicit ScopedOp(BddManager* m) : m_(m), tc_(m->ctx()) {
      if (tc_.opDepth++ == 0 && m_->sharedMode_ && !tc_.stwCoordinator)
        m_->enterSharedOp(tc_);
    }
    ~ScopedOp() {
      if (--tc_.opDepth == 0) {
        m_->flushObs(tc_);
        if (m_->sharedMode_ && !tc_.stwCoordinator) m_->leaveSharedOp(tc_);
      }
    }
    ScopedOp(const ScopedOp&) = delete;
    ScopedOp& operator=(const ScopedOp&) = delete;

   private:
    BddManager* m_;
    ThreadCtx& tc_;
  };

  // cache layer
  enum class Op : uint8_t {
    Ite, And, Xor, Exists, AndExists, Constrain, Restrict, Permute, Leq,
  };
  /// Set index of a key pair: two multiplies, top bits, masked. Quality
  /// matters less than latency here — the cache is lossy anyway.
  [[nodiscard]] static uint32_t cacheSlotOf(uint64_t k1, uint64_t k2,
                                            uint32_t mask) {
    return static_cast<uint32_t>(
               (k1 * 0x9e3779b97f4a7c15ull ^ k2 * 0xc4ceb9fe1a85ec53ull) >> 32) &
           mask;
  }
  /// 2-way set-associative probe with an age (reference) bit: a hit marks
  /// the entry recently used; the insert victimizes the un-aged way (see
  /// cacheInsert). Thread-private, so no synchronization anywhere here.
  bool cacheLookup(Op op, uint32_t a, uint32_t b, uint32_t c, uint32_t& out,
                   CacheProbe& probe) {
    ThreadCtx& tc = ctx();
    if (sharedMode_) sharedSafePoint(tc);
    ++tc.cacheLookups;
    probe.k1 = (static_cast<uint64_t>(a) << 32) | b;
    probe.k2 = (static_cast<uint64_t>(static_cast<uint8_t>(op)) << 32) | c;
    probe.slot = cacheSlotOf(probe.k1, probe.k2, tc.cacheMask);
    probe.gen = tc.cacheGen;
    CacheEntry* set = tc.cache[probe.slot].way;
    for (int w = 0; w < 2; ++w) {
      if (set[w].k1 == probe.k1 && (set[w].k2 & ~kCacheAgeBit) == probe.k2) {
        // Conditional store: repeat hits on an already-aged entry stay
        // read-only on the line.
        if ((set[w].k2 & kCacheAgeBit) == 0) set[w].k2 |= kCacheAgeBit;
        out = set[w].result;
        ++tc.cacheHits;
        return true;
      }
    }
    return false;
  }
  void cacheInsert(const CacheProbe& probe, uint32_t res) {
    ThreadCtx& tc = ctx();
    uint32_t slot = probe.slot;
    if (probe.gen != tc.cacheGen) {
      // The cache was grown between the lookup and this insert (a mkNode in
      // the recursion in between); the slot numbering changed, rehash once.
      slot = cacheSlotOf(probe.k1, probe.k2, tc.cacheMask);
    }
    CacheEntry* set = tc.cache[slot].way;
    int way = -1;
    for (int w = 0; w < 2; ++w) {
      // Reuse a way holding the same key or an empty one outright.
      if ((set[w].k1 == probe.k1 &&
           (set[w].k2 & ~kCacheAgeBit) == probe.k2) ||
          (set[w].k1 == ~0ull && set[w].k2 == ~0ull)) {
        way = w;
        break;
      }
    }
    if (way < 0) {
      // Both ways occupied: evict the one whose age bit is clear; when the
      // bits disagree this is the age-steered choice the `bdd.cache.aged`
      // counter tracks. Both aged: clear both (CLOCK-style decay), take 0.
      bool a0 = (set[0].k2 & kCacheAgeBit) != 0;
      bool a1 = (set[1].k2 & kCacheAgeBit) != 0;
      if (a0 != a1) {
        way = a0 ? 1 : 0;
        ++tc.cacheAged;
      } else {
        if (a0) {
          set[0].k2 &= ~kCacheAgeBit;
          set[1].k2 &= ~kCacheAgeBit;
        }
        way = 0;
      }
    }
    // Fresh entries start recently-used so a burst of inserts cannot evict
    // a still-hot sibling without at least one decay round.
    set[way] = CacheEntry{probe.k1, probe.k2 | kCacheAgeBit, res};
  }

  // recursive workers (raw edges; no GC may run while these are active)
  uint32_t iteRec(uint32_t f, uint32_t g, uint32_t h);
  uint32_t andRec(uint32_t f, uint32_t g);
  uint32_t xorRec(uint32_t f, uint32_t g);
  uint32_t orRec(uint32_t f, uint32_t g) { return eNot(andRec(eNot(f), eNot(g))); }
  uint32_t existsRec(uint32_t f, uint32_t cube);
  uint32_t andExistsRec(uint32_t f, uint32_t g, uint32_t cube);
  uint32_t constrainRec(uint32_t f, uint32_t c);
  uint32_t restrictRec(uint32_t f, uint32_t c);
  uint32_t permuteRec(uint32_t f, const std::vector<BddVar>& map, uint32_t mapId);
  bool leqRec(uint32_t f, uint32_t g);
  void supportRec(uint32_t f, std::vector<bool>& seen, std::vector<bool>& inSupp);
  /// Shared satCount core: the memoized density of `rootEdge`, marking
  /// every support variable in `inSupp` (sized numVars()) along the way.
  double satDensity(uint32_t rootEdge, std::vector<char>& inSupp);

  // fork-join parallel apply (bdd_ops.cpp). The *Par workers mirror their
  // serial kernels but split the two cofactor subproblems across the task
  // deque while `depth < parSplitDepth_` and the operands look larger than
  // parCutoff_; below that they fall straight through to the serial kernel.
  struct ParTask;
  [[nodiscard]] bool parEnabled() const {
    return sharedMode_ && fj_ != nullptr;
  }
  /// True when the combined operand size clearly exceeds the cutoff (walk
  /// aborted at the cap — approximate by design, never touches shared
  /// scratch).
  bool biggerThanCutoff(std::initializer_list<uint32_t> roots) const;
  uint32_t andPar(uint32_t f, uint32_t g, int depth);
  uint32_t itePar(uint32_t f, uint32_t g, uint32_t h, int depth);
  uint32_t andExistsPar(uint32_t f, uint32_t g, uint32_t cube, int depth);
  void runParTask(ParTask& t);
  void joinParTask(ParTask& t);

  // reordering internals
  size_t swapAdjacentLevels(uint32_t l);
  void siftImpl();
  void setOrderImpl(const std::vector<BddVar>& order);
  size_t uniqueSize() const { return uniqueCount_; }
  Bdd makeHandle(uint32_t idx);

  // structural-walk scratch: a per-manager visit-stamp array so nodeCount
  // and sharedNodeCount run without hashing or per-call clearing. A walk
  // bumps the epoch; a node is visited iff its stamp equals the epoch.
  // Not safe for concurrent walks: shared-phase callers serialize on
  // visitMu_ (the count queries are off the hot path).
  [[nodiscard]] uint32_t beginVisit() const;
  size_t countFrom(std::vector<uint32_t>& stack, uint32_t epoch) const;

  std::vector<Node> nodes_;
  std::vector<uint32_t> freeList_;
  std::vector<uint32_t> uniqueTable_;  ///< bucket heads
  size_t uniqueCount_ = 0;
  uint32_t uniqueMask_ = 0;

  std::vector<uint32_t> perm_;     ///< var -> level
  std::vector<BddVar> invPerm_;    ///< level -> var

  /// The main thread context, inline in the manager so the serial hot path
  /// (every cacheLookup/cacheInsert goes through ctx()) touches the same
  /// cache lines as the rest of the manager — no extra heap indirection.
  /// Shared-phase worker contexts live in workerCtxs_ instead.
  ThreadCtx mainCtx_;

  /// Registered permute maps. A deque for reference stability: in a shared
  /// phase one thread can register a new map (under permMu_) while others
  /// still hold references to previously registered ones.
  std::deque<std::vector<BddVar>> permMaps_;

  size_t gcThreshold_ = 1 << 14;
  double maxGrowth_ = 1.2;

  mutable BddStats stats_;
  // Tallies of thread contexts dropped at endShared (so lifetime totals in
  // stats()/census() survive worker teardown).
  uint64_t retiredLookups_ = 0, retiredHits_ = 0, retiredCreated_ = 0;
  uint64_t retiredAged_ = 0;

  mutable std::vector<uint32_t> visitStamp_;  ///< nodeCount walk scratch
  mutable uint32_t visitEpoch_ = 0;
  mutable std::mutex visitMu_;  ///< guards the walk scratch in a shared phase

  // ---- shared-phase state ----
  bool sharedMode_ = false;
  uint64_t sharedEpoch_ = 0;  ///< bumped per beginShared (invalidates TLS)
  size_t sharedCapacity_ = 0;
  std::atomic<uint32_t> nodeTop_{0};     ///< bump allocator (shared phase)
  std::atomic<uint32_t> arenaLimit_{0};  ///< nodes_.size() while shared

  /// Unique-table occupancy, segmented: insert counters striped over 64
  /// cache-line-padded shards (shard = bucket & 63) so concurrent inserts
  /// never contend on one counter. approxLive() = uniqueCount_ + Σ shards;
  /// gc/endShared fold them back into the exact count.
  struct alignas(64) ShardCount {
    std::atomic<int64_t> n{0};
  };
  static constexpr uint32_t kNumShards = 64;
  std::unique_ptr<ShardCount[]> shardCounts_;

  /// Threads currently executing an operation (outermost ScopedOp or a
  /// fork-join task). Gated at entry by both stop-the-world flags; a deep
  /// coordinator waits for it to reach zero.
  std::atomic<int> sharedInsideOps_{0};
  /// In-op threads parked at a safe point while a shallow stop-the-world is
  /// pending. They stay counted in sharedInsideOps_ (their recursion state
  /// is live); the shallow coordinator waits for
  /// parkedShallow_ >= insideOps - (coordinator inside ? 1 : 0).
  std::atomic<int> parkedShallow_{0};
  std::atomic<bool> stwShallow_{false};
  std::atomic<bool> stwDeep_{false};
  std::mutex parkMu_;
  std::condition_variable parkCv_;
  std::mutex freeMu_;   ///< global free-list chunk handout
  std::mutex growMu_;   ///< arena resize-in-place serialization
  std::mutex permMu_;   ///< permMaps_ registration
  mutable std::mutex ctxMu_;  ///< thread-context registry

  /// Shared-phase worker contexts (lazily attached; mainCtx_ is separate).
  std::vector<std::unique_ptr<ThreadCtx>> workerCtxs_;
  std::unordered_map<std::thread::id, ThreadCtx*> ctxByThread_;

  par::ForkJoin* fj_ = nullptr;
  size_t parCutoff_ = 2048;
  int parSplitDepth_ = 3;

  // Registry-backed observability (process-wide totals across managers).
  // References are resolved once at construction; the recursive workers
  // bump plain per-thread tallies and flushObs() batches them into these
  // shared metrics once per outermost operation.
  obs::Counter& obsCacheLookups_;
  obs::Counter& obsCacheHits_;
  obs::Counter& obsCacheAged_;
  obs::Counter& obsNodesCreated_;
  obs::Counter& obsGcRuns_;
  obs::Counter& obsGcReclaimed_;
  obs::Counter& obsReorderings_;
  obs::Counter& obsCacheKept_;
  obs::Counter& obsCacheDropped_;
  obs::Gauge& obsUniqueSize_;
  obs::Gauge& obsUniquePeak_;
  obs::Gauge& obsUniqueBuckets_;
};

/// Structural copy of BDDs between managers (the coarse-grain transfer: a
/// property-batch worker receives the design once, into its own manager).
/// The destination must have at least the source's variable count and is
/// put into the source's variable order on construction. Copies are
/// memoized across calls, so shared subgraphs (the transition-relation
/// clusters, reached sets, fairness constraints of one design) transfer
/// once; every memoized node is pinned by a handle so a destination GC
/// between calls cannot invalidate the memo.
class BddTransfer {
 public:
  BddTransfer(BddManager& src, BddManager& dst);

  /// Copy f (a src BDD) into dst, preserving structure and polarity.
  Bdd copy(const Bdd& f);
  /// Convenience: copy a whole vector.
  std::vector<Bdd> copy(const std::vector<Bdd>& fs);

  [[nodiscard]] BddManager& src() const { return *src_; }
  [[nodiscard]] BddManager& dst() const { return *dst_; }
  /// Nodes created in dst on behalf of this transfer so far.
  [[nodiscard]] size_t copiedNodes() const { return memo_.size(); }

 private:
  uint32_t copyRec(uint32_t e);

  BddManager* src_;
  BddManager* dst_;
  std::unordered_map<uint32_t, uint32_t> memo_;  ///< regular src -> dst edge
  std::vector<Bdd> keep_;  ///< pins memoized dst nodes across dst GCs
};

// ---- inline handle lifecycle ----
//
// Handle construction, destruction, and the operator forwards are on the
// hot path of every layer above (the FSM image loop copies state-set
// handles constantly), so they live in the header where they inline into
// callers across translation units.

inline Bdd::Bdd(BddManager* m, uint32_t i) : mgr_(m), idx_(i) {
  if (mgr_ != nullptr) mgr_->incRef(idx_);
}

inline Bdd::Bdd(const Bdd& o) : mgr_(o.mgr_), idx_(o.idx_) {
  if (mgr_ != nullptr) mgr_->incRef(idx_);
}

inline Bdd::Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), idx_(o.idx_) {
  o.mgr_ = nullptr;
  o.idx_ = 0;
}

inline Bdd& Bdd::operator=(const Bdd& o) {
  if (this == &o) return *this;
  if (o.mgr_ != nullptr) o.mgr_->incRef(o.idx_);
  if (mgr_ != nullptr) mgr_->decRef(idx_);
  mgr_ = o.mgr_;
  idx_ = o.idx_;
  return *this;
}

inline Bdd& Bdd::operator=(Bdd&& o) noexcept {
  if (this == &o) return *this;
  if (mgr_ != nullptr) mgr_->decRef(idx_);
  mgr_ = o.mgr_;
  idx_ = o.idx_;
  o.mgr_ = nullptr;
  o.idx_ = 0;
  return *this;
}

inline Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->decRef(idx_);
}

inline bool Bdd::isZero() const {
  return mgr_ != nullptr && idx_ == BddManager::kZeroEdge;
}
inline bool Bdd::isOne() const {
  return mgr_ != nullptr && idx_ == BddManager::kOneEdge;
}

inline BddVar Bdd::var() const {
  assert(mgr_ != nullptr && !mgr_->isTerm(idx_));
  return mgr_->nodes_[BddManager::eIdx(idx_)].var;
}

inline Bdd Bdd::low() const {
  assert(mgr_ != nullptr && !mgr_->isTerm(idx_));
  const auto& nd = mgr_->nodes_[BddManager::eIdx(idx_)];
  return mgr_->makeHandle(nd.lo ^ BddManager::eSign(idx_));
}

inline Bdd Bdd::high() const {
  assert(mgr_ != nullptr && !mgr_->isTerm(idx_));
  const auto& nd = mgr_->nodes_[BddManager::eIdx(idx_)];
  return mgr_->makeHandle(nd.hi ^ BddManager::eSign(idx_));
}

inline Bdd Bdd::operator&(const Bdd& o) const { return mgr_->andOp(*this, o); }
inline Bdd Bdd::operator|(const Bdd& o) const { return mgr_->orOp(*this, o); }
inline Bdd Bdd::operator^(const Bdd& o) const { return mgr_->xorOp(*this, o); }
inline Bdd Bdd::operator!() const { return mgr_->notOp(*this); }
inline Bdd& Bdd::operator&=(const Bdd& o) { return *this = mgr_->andOp(*this, o); }
inline Bdd& Bdd::operator|=(const Bdd& o) { return *this = mgr_->orOp(*this, o); }
inline Bdd& Bdd::operator^=(const Bdd& o) { return *this = mgr_->xorOp(*this, o); }

inline Bdd Bdd::implies(const Bdd& o) const {
  // !f | g: one specialized-kernel call on complemented inputs.
  return mgr_->orOp(!*this, o);
}

inline bool Bdd::leq(const Bdd& o) const { return mgr_->leq(*this, o); }

inline size_t Bdd::nodeCount() const {
  return mgr_ == nullptr ? 0 : mgr_->nodeCount(*this);
}

inline Bdd BddManager::makeHandle(uint32_t idx) { return Bdd(this, idx); }

}  // namespace hsis
