// Reduced Ordered Binary Decision Diagrams.
//
// This is the implicit-representation substrate of HSIS: every relation,
// state set, and transition relation in the verification engine is a Bdd
// managed by a BddManager.
//
// Design notes:
//  - Nodes live in a single arena addressed by 32-bit indices; index 0 is
//    the constant FALSE, index 1 the constant TRUE.
//  - Handles (`Bdd`) are reference-counted RAII objects; garbage collection
//    is mark-and-sweep from externally referenced nodes and runs only at
//    public-API entry points (safe points), never inside a recursion.
//  - Variable order is a permutation `perm` (variable id -> level) so that
//    dynamic reordering (sifting) never invalidates node indices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/prof.hpp"

namespace hsis {

class BddManager;

using BddVar = uint32_t;

/// A handle to a BDD node. Copying/destroying maintains the external
/// reference count on the underlying node. A default-constructed handle is
/// "null" and belongs to no manager.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& o);
  Bdd(Bdd&& o) noexcept;
  Bdd& operator=(const Bdd& o);
  Bdd& operator=(Bdd&& o) noexcept;
  ~Bdd();

  [[nodiscard]] bool isNull() const { return mgr_ == nullptr; }
  [[nodiscard]] bool isZero() const;
  [[nodiscard]] bool isOne() const;
  [[nodiscard]] bool isConstant() const { return isZero() || isOne(); }

  /// Structural equality (canonical, so also functional equality).
  bool operator==(const Bdd& o) const {
    return mgr_ == o.mgr_ && idx_ == o.idx_;
  }
  bool operator!=(const Bdd& o) const { return !(*this == o); }

  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;
  Bdd& operator&=(const Bdd& o);
  Bdd& operator|=(const Bdd& o);
  Bdd& operator^=(const Bdd& o);
  /// f.implies(g): the BDD of !f | g.
  [[nodiscard]] Bdd implies(const Bdd& o) const;
  /// Containment test: does f -> g hold everywhere? (No result BDD built.)
  [[nodiscard]] bool leq(const Bdd& o) const;

  /// Top variable id (not level). Precondition: non-constant.
  [[nodiscard]] BddVar var() const;
  [[nodiscard]] Bdd low() const;
  [[nodiscard]] Bdd high() const;

  [[nodiscard]] BddManager* manager() const { return mgr_; }
  [[nodiscard]] uint32_t index() const { return idx_; }
  /// Number of nodes in this BDD (including terminals reached).
  [[nodiscard]] size_t nodeCount() const;

 private:
  friend class BddManager;
  Bdd(BddManager* m, uint32_t i);

  BddManager* mgr_ = nullptr;
  uint32_t idx_ = 0;
};

/// Per-manager statistics view. The counters are backed by the hsis_obs
/// registry (which additionally aggregates them across all managers under
/// the `bdd.*` metric names); this struct keeps the legacy accessor shape.
struct BddStats {
  size_t liveNodes = 0;      ///< nodes currently in the unique table
  size_t allocatedNodes = 0; ///< arena size (live + freed slots)
  size_t gcRuns = 0;
  size_t cacheLookups = 0;
  size_t cacheHits = 0;
  size_t peakLiveNodes = 0;
  size_t reorderings = 0;
};

class BddManager {
 public:
  explicit BddManager(uint32_t numVars = 0);
  ~BddManager();
  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // ---- variables and constants ----

  /// Create a new variable at the bottom of the current order.
  BddVar newVar();
  /// Create a new variable at the given level, shifting others down.
  BddVar newVarAtLevel(uint32_t level);
  [[nodiscard]] uint32_t numVars() const { return static_cast<uint32_t>(perm_.size()); }
  [[nodiscard]] Bdd bddVar(BddVar v);
  /// Literal: the variable if `positive`, else its negation.
  [[nodiscard]] Bdd bddLiteral(BddVar v, bool positive);
  [[nodiscard]] Bdd bddOne();
  [[nodiscard]] Bdd bddZero();

  [[nodiscard]] uint32_t level(BddVar v) const { return perm_[v]; }
  [[nodiscard]] BddVar varAtLevel(uint32_t l) const { return invPerm_[l]; }

  // ---- core operations ----

  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  Bdd andOp(const Bdd& f, const Bdd& g);
  Bdd orOp(const Bdd& f, const Bdd& g);
  Bdd xorOp(const Bdd& f, const Bdd& g);
  Bdd notOp(const Bdd& f);

  /// Existentially quantify all variables of `cube` (a positive-literal
  /// conjunction) out of f.
  Bdd exists(const Bdd& f, const Bdd& cube);
  Bdd forall(const Bdd& f, const Bdd& cube);
  /// Relational product: exists(f & g, cube) without building f & g.
  /// This is the workhorse of image computation and early quantification.
  Bdd andExists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Cofactor with respect to a single literal.
  Bdd cofactor(const Bdd& f, BddVar v, bool positive);
  /// Coudert-Madre generalized cofactor ("constrain"). c must be != 0.
  Bdd constrain(const Bdd& f, const Bdd& c);
  /// Coudert-Madre restrict: like constrain but sibling-substitution based,
  /// never introduces variables outside supp(f) ∪ supp(c); used for
  /// don't-care minimization. c must be != 0.
  Bdd restrict(const Bdd& f, const Bdd& c);

  /// Rename variables: map[v] gives the replacement variable for v (identity
  /// entries allowed; map may be shorter than numVars, treated as identity
  /// beyond its size). Replacement variables must not occur in f unless they
  /// are fixed points of the map restricted to supp(f) — the usual use is
  /// swapping disjoint present/next-state rails.
  Bdd permute(const Bdd& f, const std::vector<BddVar>& map);

  [[nodiscard]] bool leq(const Bdd& f, const Bdd& g);

  // ---- structural queries ----

  std::vector<BddVar> support(const Bdd& f);
  Bdd supportCube(const Bdd& f);
  /// Number of satisfying assignments over `nvars` variables.
  double satCount(const Bdd& f, uint32_t nvars);
  /// One satisfying cube as a vector indexed by variable id:
  /// -1 don't-care, 0 negative, 1 positive. Empty if f == 0.
  std::vector<int8_t> pickCube(const Bdd& f);
  /// Build the conjunction of literals described by `assign` (same encoding
  /// as pickCube; -1 entries skipped).
  Bdd cubeFromAssignment(std::span<const int8_t> assign);
  size_t nodeCount(const Bdd& f) const;
  size_t sharedNodeCount(std::span<const Bdd> roots) const;

  // ---- reordering ----

  /// Sifting: move each variable through the order, keep the best position.
  /// Clears operation caches. Handles remain valid.
  void sift();
  /// Reorder so the given variables sit at the top in the given sequence.
  void setOrder(const std::vector<BddVar>& order);
  void setMaxGrowth(double g) { maxGrowth_ = g; }

  // ---- memory ----

  size_t gc();
  [[nodiscard]] size_t liveNodeCount() const { return uniqueCount_; }
  /// Point-in-time statistics (live/allocated refreshed on each call).
  [[nodiscard]] const BddStats& stats() const {
    stats_.liveNodes = uniqueCount_;
    stats_.allocatedNodes = nodes_.size();
    return stats_;
  }
  /// Exact population census: live nodes per level, unique-table and
  /// cache occupancy, lifetime event totals, and the dead-node count a
  /// mark-and-sweep would reclaim right now. O(arena + cache) scan — meant
  /// for the sampling profiler's rendezvous (at most one per tick) and for
  /// tests, not for hot paths. Must be called from the owning thread at a
  /// point where no operation is mid-recursion (any public-API boundary).
  [[nodiscard]] obs::prof::BddCensus census() const;
  void clearCaches();

  // ---- io ----

  std::string toDot(std::span<const Bdd> roots,
                    std::span<const std::string> rootNames,
                    const std::vector<std::string>& varNames = {}) const;

 private:
  friend class Bdd;

  struct Node {
    BddVar var;
    uint32_t lo, hi;
    uint32_t next;  ///< unique-table chain
    uint32_t ref;   ///< external reference count (saturating)
  };

  struct CacheEntry {
    uint64_t k1 = ~0ull, k2 = ~0ull;
    uint32_t result = 0;
  };

  // node layer
  uint32_t mkNode(BddVar var, uint32_t lo, uint32_t hi);
  void uniqueInsert(uint32_t n);
  void uniqueRemove(uint32_t n);
  void growUnique();
  void growCache();
  void maybeGcOrSift();
  void incRef(uint32_t n);
  void decRef(uint32_t n);
  [[nodiscard]] bool isTerm(uint32_t n) const { return n <= 1; }
  [[nodiscard]] uint32_t nodeLevel(uint32_t n) const {
    return isTerm(n) ? kTermLevel : perm_[nodes_[n].var];
  }

  // cache layer
  enum class Op : uint8_t {
    Ite, Exists, Forall, AndExists, Constrain, Restrict, Permute, Leq,
  };
  bool cacheLookup(Op op, uint32_t a, uint32_t b, uint32_t c, uint32_t& out);
  void cacheInsert(Op op, uint32_t a, uint32_t b, uint32_t c, uint32_t res);

  // recursive workers (raw indices; no GC may run while these are active)
  uint32_t iteRec(uint32_t f, uint32_t g, uint32_t h);
  uint32_t quantRec(uint32_t f, uint32_t cube, bool existential);
  uint32_t andExistsRec(uint32_t f, uint32_t g, uint32_t cube);
  uint32_t constrainRec(uint32_t f, uint32_t c);
  uint32_t restrictRec(uint32_t f, uint32_t c);
  uint32_t permuteRec(uint32_t f, const std::vector<BddVar>& map, uint32_t mapId);
  bool leqRec(uint32_t f, uint32_t g);
  void supportRec(uint32_t f, std::vector<bool>& seen, std::vector<bool>& inSupp);

  // reordering internals
  size_t swapAdjacentLevels(uint32_t l);
  size_t uniqueSize() const { return uniqueCount_; }
  Bdd makeHandle(uint32_t idx);

  static constexpr uint32_t kTermLevel = 0xFFFFFFFFu;
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  std::vector<Node> nodes_;
  std::vector<uint32_t> freeList_;
  std::vector<uint32_t> uniqueTable_;  ///< bucket heads
  size_t uniqueCount_ = 0;
  uint32_t uniqueMask_ = 0;

  std::vector<CacheEntry> cache_;
  uint32_t cacheMask_ = 0;

  std::vector<uint32_t> perm_;     ///< var -> level
  std::vector<BddVar> invPerm_;    ///< level -> var

  std::vector<std::vector<BddVar>> permMaps_;  ///< registered permute maps

  size_t gcThreshold_ = 1 << 14;
  double maxGrowth_ = 1.2;
  int opDepth_ = 0;  ///< >0 while a public op is active (GC unsafe)

  mutable BddStats stats_;

  // Registry-backed observability (process-wide totals across managers).
  // References are resolved once at construction; each bump is a single
  // relaxed atomic RMW, cheap enough to stay on in release builds.
  obs::Counter& obsCacheLookups_;
  obs::Counter& obsCacheHits_;
  obs::Counter& obsNodesCreated_;
  obs::Counter& obsGcRuns_;
  obs::Counter& obsGcReclaimed_;
  obs::Counter& obsReorderings_;
  obs::Gauge& obsUniqueSize_;
  obs::Gauge& obsUniquePeak_;
  obs::Gauge& obsUniqueBuckets_;
};

}  // namespace hsis
