// Reduced Ordered Binary Decision Diagrams with complement edges.
//
// This is the implicit-representation substrate of HSIS: every relation,
// state set, and transition relation in the verification engine is a Bdd
// managed by a BddManager.
//
// Design notes:
//  - An *edge* is a 32-bit word: bits 0..30 are a node index into a single
//    arena, bit 31 is a complement ("negate the function below") mark in
//    the Brace–Rudell–Bryant style. Only the ONE terminal exists (arena
//    slot 1); FALSE is the complemented edge to it. Negation is an O(1)
//    bit flip and f / !f share every node.
//  - Canonical form: the low (else) edge of a node is never complemented.
//    mkNode restores the invariant by flipping both children and
//    complementing the returned edge, so structural equality of edges is
//    functional equality, including across negation.
//  - Handles (`Bdd`) are reference-counted RAII objects; garbage collection
//    is mark-and-sweep from externally referenced nodes and runs only at
//    public-API entry points (safe points), never inside a recursion. The
//    computed cache survives collection: the sweep drops only entries that
//    mention a dead node and keeps everything else, so fixpoint loops do
//    not restart cold after every GC.
//  - Variable order is a permutation `perm` (variable id -> level) so that
//    dynamic reordering (sifting) never invalidates node indices.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "obs/prof.hpp"

namespace hsis {

class BddManager;

using BddVar = uint32_t;

/// A handle to a BDD edge (node index + complement bit). Copying/destroying
/// maintains the external reference count on the underlying node. A
/// default-constructed handle is "null" and belongs to no manager.
class Bdd {
 public:
  Bdd() = default;
  Bdd(const Bdd& o);
  Bdd(Bdd&& o) noexcept;
  Bdd& operator=(const Bdd& o);
  Bdd& operator=(Bdd&& o) noexcept;
  ~Bdd();

  [[nodiscard]] bool isNull() const { return mgr_ == nullptr; }
  [[nodiscard]] bool isZero() const;
  [[nodiscard]] bool isOne() const;
  [[nodiscard]] bool isConstant() const { return isZero() || isOne(); }

  /// Structural equality (canonical, so also functional equality).
  bool operator==(const Bdd& o) const {
    return mgr_ == o.mgr_ && idx_ == o.idx_;
  }
  bool operator!=(const Bdd& o) const { return !(*this == o); }

  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;
  Bdd operator!() const;
  Bdd& operator&=(const Bdd& o);
  Bdd& operator|=(const Bdd& o);
  Bdd& operator^=(const Bdd& o);
  /// f.implies(g): the BDD of !f | g.
  [[nodiscard]] Bdd implies(const Bdd& o) const;
  /// Containment test: does f -> g hold everywhere? (No result BDD built.)
  [[nodiscard]] bool leq(const Bdd& o) const;

  /// Top variable id (not level). Precondition: non-constant.
  [[nodiscard]] BddVar var() const;
  /// Cofactors as seen through this edge (complement bit applied).
  [[nodiscard]] Bdd low() const;
  [[nodiscard]] Bdd high() const;

  [[nodiscard]] BddManager* manager() const { return mgr_; }
  /// The raw edge word (node index | complement bit). Edges compare
  /// canonically; use only for identity/debugging, not arena arithmetic.
  [[nodiscard]] uint32_t index() const { return idx_; }
  /// Number of nodes in this BDD (including the terminal when reached).
  [[nodiscard]] size_t nodeCount() const;

 private:
  friend class BddManager;
  Bdd(BddManager* m, uint32_t i);

  BddManager* mgr_ = nullptr;
  uint32_t idx_ = 0;
};

/// Per-manager statistics view. The counters are backed by the hsis_obs
/// registry (which additionally aggregates them across all managers under
/// the `bdd.*` metric names); this struct keeps the legacy accessor shape.
struct BddStats {
  size_t liveNodes = 0;      ///< nodes currently in the unique table
  size_t allocatedNodes = 0; ///< arena size (live + freed slots)
  size_t gcRuns = 0;
  size_t cacheLookups = 0;
  size_t cacheHits = 0;
  size_t peakLiveNodes = 0;
  size_t reorderings = 0;
};

class BddManager {
 public:
  explicit BddManager(uint32_t numVars = 0);
  ~BddManager();
  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  // ---- variables and constants ----

  /// Create a new variable at the bottom of the current order.
  BddVar newVar();
  /// Create a new variable at the given level, shifting others down.
  BddVar newVarAtLevel(uint32_t level);
  [[nodiscard]] uint32_t numVars() const { return static_cast<uint32_t>(perm_.size()); }
  [[nodiscard]] Bdd bddVar(BddVar v);
  /// Literal: the variable if `positive`, else its negation.
  [[nodiscard]] Bdd bddLiteral(BddVar v, bool positive);
  [[nodiscard]] Bdd bddOne();
  [[nodiscard]] Bdd bddZero();

  [[nodiscard]] uint32_t level(BddVar v) const { return perm_[v]; }
  [[nodiscard]] BddVar varAtLevel(uint32_t l) const { return invPerm_[l]; }

  // ---- core operations ----

  Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  Bdd andOp(const Bdd& f, const Bdd& g);
  Bdd orOp(const Bdd& f, const Bdd& g);
  Bdd xorOp(const Bdd& f, const Bdd& g);
  /// O(1): flips the complement bit, allocates nothing.
  Bdd notOp(const Bdd& f);

  /// Existentially quantify all variables of `cube` (a positive-literal
  /// conjunction) out of f.
  Bdd exists(const Bdd& f, const Bdd& cube);
  Bdd forall(const Bdd& f, const Bdd& cube);
  /// Relational product: exists(f & g, cube) without building f & g.
  /// This is the workhorse of image computation and early quantification.
  Bdd andExists(const Bdd& f, const Bdd& g, const Bdd& cube);

  /// Cofactor with respect to a single literal.
  Bdd cofactor(const Bdd& f, BddVar v, bool positive);
  /// Coudert-Madre generalized cofactor ("constrain"). c must be != 0.
  Bdd constrain(const Bdd& f, const Bdd& c);
  /// Coudert-Madre restrict: like constrain but sibling-substitution based,
  /// never introduces variables outside supp(f) ∪ supp(c); used for
  /// don't-care minimization. c must be != 0.
  Bdd restrict(const Bdd& f, const Bdd& c);

  /// Rename variables: map[v] gives the replacement variable for v (identity
  /// entries allowed; map may be shorter than numVars, treated as identity
  /// beyond its size). Replacement variables must not occur in f unless they
  /// are fixed points of the map restricted to supp(f) — the usual use is
  /// swapping disjoint present/next-state rails.
  Bdd permute(const Bdd& f, const std::vector<BddVar>& map);

  [[nodiscard]] bool leq(const Bdd& f, const Bdd& g);

  // ---- structural queries ----

  std::vector<BddVar> support(const Bdd& f);
  Bdd supportCube(const Bdd& f);
  /// Number of satisfying assignments over an `nvars`-variable space.
  /// support(f) must fit inside that space: throws std::invalid_argument
  /// when f depends on more than `nvars` variables (the density recursion
  /// is level-independent, so a too-small space would silently undercount).
  double satCount(const Bdd& f, uint32_t nvars);
  /// satCount over an explicit variable set: the assignment space is
  /// exactly `vars` (each variable at most once). Throws
  /// std::invalid_argument when support(f) is not a subset of `vars`.
  double satCount(const Bdd& f, std::span<const BddVar> vars);
  /// One satisfying cube as a vector indexed by variable id:
  /// -1 don't-care, 0 negative, 1 positive. Empty if f == 0.
  std::vector<int8_t> pickCube(const Bdd& f);
  /// Build the conjunction of literals described by `assign` (same encoding
  /// as pickCube; -1 entries skipped).
  Bdd cubeFromAssignment(std::span<const int8_t> assign);
  size_t nodeCount(const Bdd& f) const;
  size_t sharedNodeCount(std::span<const Bdd> roots) const;

  // ---- reordering ----

  /// Sifting: move each variable through the order, keep the best position.
  /// Handles and cached results remain valid (swaps preserve node
  /// functions in place).
  void sift();
  /// Reorder so the given variables sit at the top in the given sequence.
  void setOrder(const std::vector<BddVar>& order);
  void setMaxGrowth(double g) { maxGrowth_ = g; }

  // ---- memory ----

  size_t gc();
  [[nodiscard]] size_t liveNodeCount() const { return uniqueCount_; }
  /// Point-in-time statistics (live/allocated refreshed on each call).
  [[nodiscard]] const BddStats& stats() const {
    stats_.liveNodes = uniqueCount_;
    stats_.allocatedNodes = nodes_.size();
    return stats_;
  }
  /// Exact population census: live nodes per level, unique-table and
  /// cache occupancy, lifetime event totals, and the dead-node count a
  /// mark-and-sweep would reclaim right now. O(arena + cache) scan — meant
  /// for the sampling profiler's rendezvous (at most one per tick) and for
  /// tests, not for hot paths. Must be called from the owning thread at a
  /// point where no operation is mid-recursion (any public-API boundary).
  [[nodiscard]] obs::prof::BddCensus census() const;
  void clearCaches();

  // ---- io ----

  std::string toDot(std::span<const Bdd> roots,
                    std::span<const std::string> rootNames,
                    const std::vector<std::string>& varNames = {}) const;

 private:
  friend class Bdd;

  struct Node {
    BddVar var;
    uint32_t lo, hi;  ///< child edges; `lo` is always a regular edge
    uint32_t next;    ///< unique-table chain
    uint32_t ref;     ///< external reference count (saturating)
  };

  struct CacheEntry {
    uint64_t k1 = ~0ull, k2 = ~0ull;
    uint32_t result = 0;
  };

  /// One computed-cache probe: keys, slot, and the cache generation the
  /// slot was computed under. A lookup fills it; a later insert reuses the
  /// slot without rehashing unless the cache was grown in between.
  struct CacheProbe {
    uint64_t k1 = 0, k2 = 0;
    uint32_t slot = 0;
    uint64_t gen = 0;
  };

  // ---- edges ----
  static constexpr uint32_t kComplBit = 0x80000000u;
  static constexpr uint32_t kOneEdge = 1u;
  static constexpr uint32_t kZeroEdge = kOneEdge | kComplBit;

  /// Node index of an edge.
  [[nodiscard]] static constexpr uint32_t eIdx(uint32_t e) { return e & ~kComplBit; }
  /// Is the edge complemented?
  [[nodiscard]] static constexpr bool eIsNeg(uint32_t e) { return (e & kComplBit) != 0; }
  /// Negation: O(1) bit flip.
  [[nodiscard]] static constexpr uint32_t eNot(uint32_t e) { return e ^ kComplBit; }
  /// The complement bit of an edge (0 or kComplBit), for sign propagation.
  [[nodiscard]] static constexpr uint32_t eSign(uint32_t e) { return e & kComplBit; }

  static constexpr uint32_t kRefSaturated = 0xFFFFFFFFu;

  // node layer
  uint32_t mkNode(BddVar var, uint32_t lo, uint32_t hi);
  void uniqueInsert(uint32_t n);
  void uniqueRemove(uint32_t n);
  void growUnique();
  void growCache();
  void maybeGcOrSift();
  void incRef(uint32_t e) {
    uint32_t& r = nodes_[eIdx(e)].ref;
    if (r != kRefSaturated) ++r;
  }
  void decRef(uint32_t e) {
    uint32_t& r = nodes_[eIdx(e)].ref;
    assert(r > 0);
    if (r != kRefSaturated) --r;
  }
  [[nodiscard]] bool isTerm(uint32_t e) const { return eIdx(e) <= 1; }
  [[nodiscard]] uint32_t nodeLevel(uint32_t e) const {
    return isTerm(e) ? kTermLevel : perm_[nodes_[eIdx(e)].var];
  }

  // GC internals. markReachable runs the shared mark DFS (every node
  // reachable from an externally referenced one, terminals always marked)
  // used by gc(), census(), and the cache keep-alive sweep. Free arena
  // slots are recognized by their var == kNil sentinel — no separate
  // free-slot mask pass. Byte mask, not vector<bool>: the sweep and
  // keep-alive loops read it per node/entry.
  [[nodiscard]] std::vector<uint8_t> markReachable() const;
  /// Drop computed-cache entries that mention a dead node; keep the rest.
  void cacheKeepAlive(const std::vector<uint8_t>& marked);

  /// Push the plain per-manager tallies (lookups, hits, nodes created,
  /// table sizes) into the shared registry metrics. Called once per public
  /// operation as the outermost recursion unwinds — the recursive workers
  /// themselves never touch an atomic.
  void flushObs();

  /// RAII guard for a public operation: GC stays deferred while the
  /// recursion holds raw node indices, and the registry metrics are
  /// flushed exactly once when the outermost operation completes.
  class ScopedOp {
   public:
    explicit ScopedOp(BddManager* m) : m_(m) { ++m_->opDepth_; }
    ~ScopedOp() {
      if (--m_->opDepth_ == 0) m_->flushObs();
    }
    ScopedOp(const ScopedOp&) = delete;
    ScopedOp& operator=(const ScopedOp&) = delete;

   private:
    BddManager* m_;
  };

  // cache layer
  enum class Op : uint8_t {
    Ite, And, Xor, Exists, AndExists, Constrain, Restrict, Permute, Leq,
  };
  /// Slot of a key pair: two multiplies, top bits. Quality matters less
  /// than latency here — the cache is direct-mapped and lossy anyway.
  [[nodiscard]] uint32_t cacheSlotOf(uint64_t k1, uint64_t k2) const {
    return static_cast<uint32_t>(
               (k1 * 0x9e3779b97f4a7c15ull ^ k2 * 0xc4ceb9fe1a85ec53ull) >> 32) &
           cacheMask_;
  }
  bool cacheLookup(Op op, uint32_t a, uint32_t b, uint32_t c, uint32_t& out,
                   CacheProbe& probe) {
    ++stats_.cacheLookups;
    probe.k1 = (static_cast<uint64_t>(a) << 32) | b;
    probe.k2 = (static_cast<uint64_t>(static_cast<uint8_t>(op)) << 32) | c;
    probe.slot = cacheSlotOf(probe.k1, probe.k2);
    probe.gen = cacheGen_;
    const CacheEntry& e = cache_[probe.slot];
    if (e.k1 == probe.k1 && e.k2 == probe.k2) {
      out = e.result;
      ++stats_.cacheHits;
      return true;
    }
    return false;
  }
  void cacheInsert(const CacheProbe& probe, uint32_t res) {
    uint32_t slot = probe.slot;
    if (probe.gen != cacheGen_) {
      // The cache was grown between the lookup and this insert (a mkNode in
      // the recursion in between); the slot numbering changed, rehash once.
      slot = cacheSlotOf(probe.k1, probe.k2);
    }
    cache_[slot] = CacheEntry{probe.k1, probe.k2, res};
  }

  // recursive workers (raw edges; no GC may run while these are active)
  uint32_t iteRec(uint32_t f, uint32_t g, uint32_t h);
  uint32_t andRec(uint32_t f, uint32_t g);
  uint32_t xorRec(uint32_t f, uint32_t g);
  uint32_t orRec(uint32_t f, uint32_t g) { return eNot(andRec(eNot(f), eNot(g))); }
  uint32_t existsRec(uint32_t f, uint32_t cube);
  uint32_t andExistsRec(uint32_t f, uint32_t g, uint32_t cube);
  uint32_t constrainRec(uint32_t f, uint32_t c);
  uint32_t restrictRec(uint32_t f, uint32_t c);
  uint32_t permuteRec(uint32_t f, const std::vector<BddVar>& map, uint32_t mapId);
  bool leqRec(uint32_t f, uint32_t g);
  void supportRec(uint32_t f, std::vector<bool>& seen, std::vector<bool>& inSupp);
  /// Shared satCount core: the memoized density of `rootEdge`, marking
  /// every support variable in `inSupp` (sized numVars()) along the way.
  double satDensity(uint32_t rootEdge, std::vector<char>& inSupp);

  // reordering internals
  size_t swapAdjacentLevels(uint32_t l);
  size_t uniqueSize() const { return uniqueCount_; }
  Bdd makeHandle(uint32_t idx);

  // structural-walk scratch: a per-manager visit-stamp array so nodeCount
  // and sharedNodeCount run without hashing or per-call clearing. A walk
  // bumps the epoch; a node is visited iff its stamp equals the epoch.
  [[nodiscard]] uint32_t beginVisit() const;
  size_t countFrom(std::vector<uint32_t>& stack, uint32_t epoch) const;

  static constexpr uint32_t kTermLevel = 0xFFFFFFFFu;
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  std::vector<Node> nodes_;
  std::vector<uint32_t> freeList_;
  std::vector<uint32_t> uniqueTable_;  ///< bucket heads
  size_t uniqueCount_ = 0;
  uint32_t uniqueMask_ = 0;

  std::vector<CacheEntry> cache_;
  uint32_t cacheMask_ = 0;
  uint64_t cacheGen_ = 0;  ///< bumped whenever slot numbering changes

  std::vector<uint32_t> perm_;     ///< var -> level
  std::vector<BddVar> invPerm_;    ///< level -> var

  std::vector<std::vector<BddVar>> permMaps_;  ///< registered permute maps

  size_t gcThreshold_ = 1 << 14;
  double maxGrowth_ = 1.2;
  int opDepth_ = 0;  ///< >0 while a public op is active (GC unsafe)

  mutable BddStats stats_;
  uint64_t createdTotal_ = 0;   ///< lifetime mkNode insertions
  uint64_t flushedLookups_ = 0, flushedHits_ = 0, flushedCreated_ = 0;

  mutable std::vector<uint32_t> visitStamp_;  ///< nodeCount walk scratch
  mutable uint32_t visitEpoch_ = 0;

  // Registry-backed observability (process-wide totals across managers).
  // References are resolved once at construction; the recursive workers
  // bump plain per-manager tallies and flushObs() batches them into these
  // shared metrics once per public operation.
  obs::Counter& obsCacheLookups_;
  obs::Counter& obsCacheHits_;
  obs::Counter& obsNodesCreated_;
  obs::Counter& obsGcRuns_;
  obs::Counter& obsGcReclaimed_;
  obs::Counter& obsReorderings_;
  obs::Counter& obsCacheKept_;
  obs::Counter& obsCacheDropped_;
  obs::Gauge& obsUniqueSize_;
  obs::Gauge& obsUniquePeak_;
  obs::Gauge& obsUniqueBuckets_;
};

// ---- inline handle lifecycle ----
//
// Handle construction, destruction, and the operator forwards are on the
// hot path of every layer above (the FSM image loop copies state-set
// handles constantly), so they live in the header where they inline into
// callers across translation units.

inline Bdd::Bdd(BddManager* m, uint32_t i) : mgr_(m), idx_(i) {
  if (mgr_ != nullptr) mgr_->incRef(idx_);
}

inline Bdd::Bdd(const Bdd& o) : mgr_(o.mgr_), idx_(o.idx_) {
  if (mgr_ != nullptr) mgr_->incRef(idx_);
}

inline Bdd::Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), idx_(o.idx_) {
  o.mgr_ = nullptr;
  o.idx_ = 0;
}

inline Bdd& Bdd::operator=(const Bdd& o) {
  if (this == &o) return *this;
  if (o.mgr_ != nullptr) o.mgr_->incRef(o.idx_);
  if (mgr_ != nullptr) mgr_->decRef(idx_);
  mgr_ = o.mgr_;
  idx_ = o.idx_;
  return *this;
}

inline Bdd& Bdd::operator=(Bdd&& o) noexcept {
  if (this == &o) return *this;
  if (mgr_ != nullptr) mgr_->decRef(idx_);
  mgr_ = o.mgr_;
  idx_ = o.idx_;
  o.mgr_ = nullptr;
  o.idx_ = 0;
  return *this;
}

inline Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->decRef(idx_);
}

inline bool Bdd::isZero() const {
  return mgr_ != nullptr && idx_ == BddManager::kZeroEdge;
}
inline bool Bdd::isOne() const {
  return mgr_ != nullptr && idx_ == BddManager::kOneEdge;
}

inline BddVar Bdd::var() const {
  assert(mgr_ != nullptr && !mgr_->isTerm(idx_));
  return mgr_->nodes_[BddManager::eIdx(idx_)].var;
}

inline Bdd Bdd::low() const {
  assert(mgr_ != nullptr && !mgr_->isTerm(idx_));
  const auto& nd = mgr_->nodes_[BddManager::eIdx(idx_)];
  return mgr_->makeHandle(nd.lo ^ BddManager::eSign(idx_));
}

inline Bdd Bdd::high() const {
  assert(mgr_ != nullptr && !mgr_->isTerm(idx_));
  const auto& nd = mgr_->nodes_[BddManager::eIdx(idx_)];
  return mgr_->makeHandle(nd.hi ^ BddManager::eSign(idx_));
}

inline Bdd Bdd::operator&(const Bdd& o) const { return mgr_->andOp(*this, o); }
inline Bdd Bdd::operator|(const Bdd& o) const { return mgr_->orOp(*this, o); }
inline Bdd Bdd::operator^(const Bdd& o) const { return mgr_->xorOp(*this, o); }
inline Bdd Bdd::operator!() const { return mgr_->notOp(*this); }
inline Bdd& Bdd::operator&=(const Bdd& o) { return *this = mgr_->andOp(*this, o); }
inline Bdd& Bdd::operator|=(const Bdd& o) { return *this = mgr_->orOp(*this, o); }
inline Bdd& Bdd::operator^=(const Bdd& o) { return *this = mgr_->xorOp(*this, o); }

inline Bdd Bdd::implies(const Bdd& o) const {
  // !f | g: one specialized-kernel call on complemented inputs.
  return mgr_->orOp(!*this, o);
}

inline bool Bdd::leq(const Bdd& o) const { return mgr_->leq(*this, o); }

inline size_t Bdd::nodeCount() const {
  return mgr_ == nullptr ? 0 : mgr_->nodeCount(*this);
}

inline Bdd BddManager::makeHandle(uint32_t idx) { return Bdd(this, idx); }

}  // namespace hsis
