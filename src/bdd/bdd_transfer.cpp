// Cross-manager BDD transfer by structural copy.
//
// The batch scheduler gives each worker thread its own BddManager and moves
// the design over once; after that the workers never synchronize on BDD
// state at all. The copy walks the source DAG bottom-up, memoizing per
// *regular* edge (complement bits are stripped before the walk and XORed
// back outside), so `f` and `!f` share one traversal and the copied graph
// has exactly the source's node count for the transferred roots.
//
// Safety contract: the source manager must be quiescent for the duration of
// the transfer — no operations, GC, or reordering on it from any thread.
// Reads of the source arena are then plain loads of immutable data, which is
// how several transfers of the same source can run concurrently (one per
// worker). The destination manager is private to the caller.
#include "bdd/bdd.hpp"

#include <stdexcept>

namespace hsis {

BddTransfer::BddTransfer(BddManager& src, BddManager& dst)
    : src_(&src), dst_(&dst) {
  if (src_ == dst_)
    throw std::invalid_argument(
        "BddTransfer: source and destination are the same manager");
  if (src_->sharedMode() || dst_->sharedMode())
    throw std::logic_error(
        "BddTransfer: managers must not be in a shared phase");
  // Mirror the source variable universe and its order. Variables are
  // matched by id, so the destination must cover at least the source's ids;
  // extra destination variables are left where they are (below the copied
  // order, per setOrder's contract).
  while (dst_->numVars() < src_->numVars()) dst_->newVar();
  dst_->setOrder(src_->varOrder());
}

uint32_t BddTransfer::copyRec(uint32_t e) {
  // Invariant: `e` is a regular source edge; the result is a regular
  // destination edge. Terminal first — the only regular terminal is ONE.
  if (src_->isTerm(BddManager::eIdx(e))) return BddManager::kOneEdge;
  auto it = memo_.find(e);
  if (it != memo_.end()) return it->second;

  const uint32_t n = BddManager::eIdx(e);
  const BddVar var = src_->nodes_[n].var;
  const uint32_t srcLo = src_->nodes_[n].lo;  // regular by canonical form
  const uint32_t srcHi = src_->nodes_[n].hi;
  const uint32_t hiSign = BddManager::eSign(srcHi);

  uint32_t dstLo = copyRec(srcLo);
  uint32_t dstHi = copyRec(srcHi ^ hiSign) ^ hiSign;
  // Regular low in, regular edge out: mkNode only sign-factors on a
  // complemented low edge, so the memoized edge stays regular.
  uint32_t out = dst_->mkNode(var, dstLo, dstHi);
  // Pin the copy: the memo holds raw indices, which a destination GC
  // between copy() calls would otherwise be free to sweep.
  keep_.push_back(dst_->makeHandle(out));
  memo_.emplace(e, out);
  return out;
}

Bdd BddTransfer::copy(const Bdd& f) {
  if (f.isNull()) return {};
  uint32_t e = f.index();
  uint32_t s = BddManager::eSign(e);
  return dst_->makeHandle(copyRec(e ^ s) ^ s);
}

std::vector<Bdd> BddTransfer::copy(const std::vector<Bdd>& fs) {
  std::vector<Bdd> out;
  out.reserve(fs.size());
  for (const Bdd& f : fs) out.push_back(copy(f));
  return out;
}

}  // namespace hsis
