// Dynamic variable reordering by sifting (Rudell), plus explicit
// order-setting. Both are built on in-place adjacent-level swaps, which
// preserve node indices and node functions — so outstanding handles and
// cached operation results stay valid across a reordering.
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/log.hpp"

namespace hsis {

size_t BddManager::swapAdjacentLevels(uint32_t l) {
  assert(l + 1 < numVars());
  BddVar u = invPerm_[l];
  BddVar v = invPerm_[l + 1];

  // Rewrite every live u-node that depends on v. A u-node whose children
  // avoid v simply migrates to level l+1 untouched; no parent link changes
  // because indices are stable. The low edge is regular by canonical-form
  // invariant; the high edge's complement bit propagates to its cofactors.
  size_t n = nodes_.size();
  for (uint32_t i = 2; i < n; ++i) {
    if (nodes_[i].var != u) continue;  // free slots carry var == kNil
    uint32_t lo = nodes_[i].lo, hi = nodes_[i].hi;
    assert(!eIsNeg(lo) && "canonical form: low edge must be regular");
    bool loDep = !isTerm(lo) && nodes_[lo].var == v;
    bool hiDep = !isTerm(hi) && nodes_[eIdx(hi)].var == v;
    if (!loDep && !hiDep) continue;

    uniqueRemove(i);
    uint32_t sh = eSign(hi);
    uint32_t f00 = loDep ? nodes_[lo].lo : lo;
    uint32_t f01 = loDep ? nodes_[lo].hi : lo;
    uint32_t f10 = hiDep ? nodes_[eIdx(hi)].lo ^ sh : hi;
    uint32_t f11 = hiDep ? nodes_[eIdx(hi)].hi ^ sh : hi;
    // All four grandchildren lie strictly below both levels, so the new
    // children cannot themselves require rewriting.
    uint32_t n0 = mkNode(u, f00, f10);
    uint32_t n1 = mkNode(u, f01, f11);
    assert(n0 != n1 && "node did not actually depend on v");
    assert(!eIsNeg(n0) && "swap result low edge must stay regular");
    nodes_[i].var = v;
    nodes_[i].lo = n0;
    nodes_[i].hi = n1;
    uniqueInsert(i);
  }

  invPerm_[l] = v;
  invPerm_[l + 1] = u;
  perm_[u] = l + 1;
  perm_[v] = l;
  // approxLive folds the shared-phase shard deltas in; in serial mode it
  // is exactly uniqueCount_.
  return approxLive();
}

void BddManager::sift() {
  if (numVars() < 2) return;
  if (!sharedMode_) {
    siftImpl();
    return;
  }
  // Shared phase: sifting rewrites the table in place, so every worker
  // must be quiesced at an op boundary first. Election can be lost to a
  // concurrent GC/census coordinator — retry until we own the world.
  ThreadCtx& tc = ctx();
  assert(tc.opDepth == 0 && "sift from inside an operation");
  while (!stwDeepRun(tc, [&] { siftImpl(); })) std::this_thread::yield();
}

void BddManager::siftImpl() {
  obs::Span span("bdd.sift");
  gc();  // sweep dead nodes so sizes reflect live structure only
  const size_t nodesBefore = approxLive();
  ScopedOp guard(this);  // no GC while raw swaps run

  uint32_t n = numVars();
  // Process variables in decreasing order of their level population:
  // the fattest levels have the most to gain.
  std::vector<size_t> levelSize(n, 0);
  for (uint32_t i = 2; i < nodes_.size(); ++i) {
    if (nodes_[i].var != kNil && nodes_[i].var != kTermLevel)
      levelSize[perm_[nodes_[i].var]]++;
  }
  std::vector<BddVar> vars(n);
  std::iota(vars.begin(), vars.end(), 0);
  std::sort(vars.begin(), vars.end(), [&](BddVar a, BddVar b) {
    return levelSize[perm_[a]] > levelSize[perm_[b]];
  });

  for (BddVar v : vars) {
    size_t startSize = approxLive();
    size_t limit = static_cast<size_t>(static_cast<double>(startSize) * maxGrowth_) + 16;
    size_t best = startSize;
    uint32_t bestLevel = perm_[v];

    // Phase 1: sift down to the bottom (or until the growth limit).
    while (perm_[v] + 1 < n) {
      size_t s = swapAdjacentLevels(perm_[v]);
      if (s < best) {
        best = s;
        bestLevel = perm_[v];
      }
      if (s > limit) break;
    }
    // Phase 2: sift up to the top (or until the growth limit).
    while (perm_[v] > 0) {
      size_t s = swapAdjacentLevels(perm_[v] - 1);
      if (s <= best) {  // prefer higher position on ties (cheaper to reach)
        best = s;
        bestLevel = perm_[v];
      }
      if (s > limit) break;
    }
    // Phase 3: return to the best position seen.
    while (perm_[v] < bestLevel) swapAdjacentLevels(perm_[v]);
    while (perm_[v] > bestLevel) swapAdjacentLevels(perm_[v] - 1);
  }
  ++stats_.reorderings;
  obsReorderings_.add();
  HSIS_LOG_INFO("bdd.sift", "sifting pass complete",
                {{"nodes_before", nodesBefore},
                 {"nodes_after", approxLive()},
                 {"vars", numVars()}});
}

void BddManager::setOrder(const std::vector<BddVar>& order) {
  if (!sharedMode_) {
    setOrderImpl(order);
    return;
  }
  ThreadCtx& tc = ctx();
  assert(tc.opDepth == 0 && "setOrder from inside an operation");
  while (!stwDeepRun(tc, [&] { setOrderImpl(order); }))
    std::this_thread::yield();
}

void BddManager::setOrderImpl(const std::vector<BddVar>& order) {
  ScopedOp guard(this);
  // Bubble each requested variable to its target level, top-down. Variables
  // not mentioned keep their relative order below the mentioned ones.
  for (uint32_t target = 0; target < order.size(); ++target) {
    BddVar v = order[target];
    assert(v < numVars());
    while (perm_[v] > target) swapAdjacentLevels(perm_[v] - 1);
  }
  ++stats_.reorderings;
  obsReorderings_.add();
}

}  // namespace hsis
