// Core BDD algorithms: ite, quantification, relational product,
// generalized cofactors, variable renaming, and containment.
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hsis {

namespace {

/// RAII guard marking a public operation as active: garbage collection is
/// deferred while any operation's recursion holds raw node indices.
class ScopedOp {
 public:
  explicit ScopedOp(int& depth) : depth_(depth) { ++depth_; }
  ~ScopedOp() { --depth_; }
  ScopedOp(const ScopedOp&) = delete;
  ScopedOp& operator=(const ScopedOp&) = delete;

 private:
  int& depth_;
};

}  // namespace

// -------------------------------------------------------------------- ite

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  assert(f.manager() == this && g.manager() == this && h.manager() == this);
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  return makeHandle(iteRec(f.index(), g.index(), h.index()));
}

uint32_t BddManager::iteRec(uint32_t f, uint32_t g, uint32_t h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;

  uint32_t out;
  if (cacheLookup(Op::Ite, f, g, h, out)) return out;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g), lh = nodeLevel(h);
  uint32_t top = std::min({lf, lg, lh});
  BddVar v = invPerm_[top];

  uint32_t f0 = lf == top ? nodes_[f].lo : f;
  uint32_t f1 = lf == top ? nodes_[f].hi : f;
  uint32_t g0 = lg == top ? nodes_[g].lo : g;
  uint32_t g1 = lg == top ? nodes_[g].hi : g;
  uint32_t h0 = lh == top ? nodes_[h].lo : h;
  uint32_t h1 = lh == top ? nodes_[h].hi : h;

  uint32_t lo = iteRec(f0, g0, h0);
  uint32_t hi = iteRec(f1, g1, h1);
  uint32_t res = mkNode(v, lo, hi);
  cacheInsert(Op::Ite, f, g, h, res);
  return res;
}

Bdd BddManager::andOp(const Bdd& f, const Bdd& g) {
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  return makeHandle(iteRec(f.index(), g.index(), 0));
}

Bdd BddManager::orOp(const Bdd& f, const Bdd& g) {
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  return makeHandle(iteRec(f.index(), 1, g.index()));
}

Bdd BddManager::xorOp(const Bdd& f, const Bdd& g) {
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  uint32_t ng = iteRec(g.index(), 0, 1);
  return makeHandle(iteRec(f.index(), ng, g.index()));
}

Bdd BddManager::notOp(const Bdd& f) {
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  return makeHandle(iteRec(f.index(), 0, 1));
}

// --------------------------------------------------------- quantification

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  return makeHandle(quantRec(f.index(), cube.index(), /*existential=*/true));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  return makeHandle(quantRec(f.index(), cube.index(), /*existential=*/false));
}

uint32_t BddManager::quantRec(uint32_t f, uint32_t cube, bool existential) {
  if (isTerm(f) || cube == 1) return f;
  assert(cube != 0 && "quantifier cube must be a positive-literal product");

  // Skip cube variables above f's top.
  uint32_t lf = nodeLevel(f);
  while (!isTerm(cube) && nodeLevel(cube) < lf) cube = nodes_[cube].hi;
  if (cube == 1) return f;

  Op op = existential ? Op::Exists : Op::Forall;
  uint32_t out;
  if (cacheLookup(op, f, cube, 0, out)) return out;

  uint32_t lc = nodeLevel(cube);
  uint32_t res;
  if (lf == lc) {
    uint32_t lo = quantRec(nodes_[f].lo, nodes_[cube].hi, existential);
    uint32_t hi = quantRec(nodes_[f].hi, nodes_[cube].hi, existential);
    res = existential ? iteRec(lo, 1, hi) : iteRec(lo, hi, 0);
  } else {
    uint32_t lo = quantRec(nodes_[f].lo, cube, existential);
    uint32_t hi = quantRec(nodes_[f].hi, cube, existential);
    res = mkNode(nodes_[f].var, lo, hi);
  }
  cacheInsert(op, f, cube, 0, res);
  return res;
}

Bdd BddManager::andExists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  return makeHandle(andExistsRec(f.index(), g.index(), cube.index()));
}

uint32_t BddManager::andExistsRec(uint32_t f, uint32_t g, uint32_t cube) {
  if (f == 0 || g == 0) return 0;
  if (f == 1 && g == 1) return 1;
  if (f == 1) return quantRec(g, cube, true);
  if (g == 1) return quantRec(f, cube, true);
  if (f == g) return quantRec(f, cube, true);
  if (cube == 1) return iteRec(f, g, 0);

  if (f > g) std::swap(f, g);  // conjunction is commutative: normalize key
  uint32_t out;
  if (cacheLookup(Op::AndExists, f, g, cube, out)) return out;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  // Advance the cube past variables above the top of f and g.
  uint32_t c = cube;
  while (!isTerm(c) && nodeLevel(c) < top) c = nodes_[c].hi;

  BddVar v = invPerm_[top];
  uint32_t f0 = lf == top ? nodes_[f].lo : f;
  uint32_t f1 = lf == top ? nodes_[f].hi : f;
  uint32_t g0 = lg == top ? nodes_[g].lo : g;
  uint32_t g1 = lg == top ? nodes_[g].hi : g;

  uint32_t res;
  if (!isTerm(c) && nodeLevel(c) == top) {
    // Quantified variable at the top: OR the two cofactor products.
    uint32_t lo = andExistsRec(f0, g0, nodes_[c].hi);
    if (lo == 1) {
      res = 1;
    } else {
      uint32_t hi = andExistsRec(f1, g1, nodes_[c].hi);
      res = iteRec(lo, 1, hi);
    }
  } else {
    uint32_t lo = andExistsRec(f0, g0, c);
    uint32_t hi = andExistsRec(f1, g1, c);
    res = mkNode(v, lo, hi);
  }
  cacheInsert(Op::AndExists, f, g, cube, res);
  return res;
}

// ------------------------------------------------------------- cofactors

Bdd BddManager::cofactor(const Bdd& f, BddVar v, bool positive) {
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  Bdd lit = bddLiteral(v, positive);
  // Cofactor by a single literal == constrain by that literal.
  return makeHandle(constrainRec(f.index(), lit.index()));
}

Bdd BddManager::constrain(const Bdd& f, const Bdd& c) {
  if (c.isZero()) throw std::invalid_argument("constrain: care set is empty");
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  return makeHandle(constrainRec(f.index(), c.index()));
}

uint32_t BddManager::constrainRec(uint32_t f, uint32_t c) {
  assert(c != 0);
  if (c == 1 || isTerm(f)) return f;
  if (f == c) return 1;
  uint32_t out;
  if (cacheLookup(Op::Constrain, f, c, 0, out)) return out;

  uint32_t lf = nodeLevel(f), lc = nodeLevel(c);
  uint32_t res;
  if (lc < lf) {
    if (nodes_[c].lo == 0) {
      res = constrainRec(f, nodes_[c].hi);
    } else if (nodes_[c].hi == 0) {
      res = constrainRec(f, nodes_[c].lo);
    } else {
      uint32_t lo = constrainRec(f, nodes_[c].lo);
      uint32_t hi = constrainRec(f, nodes_[c].hi);
      res = mkNode(nodes_[c].var, lo, hi);
    }
  } else if (lf < lc) {
    uint32_t lo = constrainRec(nodes_[f].lo, c);
    uint32_t hi = constrainRec(nodes_[f].hi, c);
    res = mkNode(nodes_[f].var, lo, hi);
  } else {
    if (nodes_[c].lo == 0) {
      res = constrainRec(nodes_[f].hi, nodes_[c].hi);
    } else if (nodes_[c].hi == 0) {
      res = constrainRec(nodes_[f].lo, nodes_[c].lo);
    } else {
      uint32_t lo = constrainRec(nodes_[f].lo, nodes_[c].lo);
      uint32_t hi = constrainRec(nodes_[f].hi, nodes_[c].hi);
      res = mkNode(nodes_[f].var, lo, hi);
    }
  }
  cacheInsert(Op::Constrain, f, c, 0, res);
  return res;
}

Bdd BddManager::restrict(const Bdd& f, const Bdd& c) {
  if (c.isZero()) throw std::invalid_argument("restrict: care set is empty");
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  return makeHandle(restrictRec(f.index(), c.index()));
}

uint32_t BddManager::restrictRec(uint32_t f, uint32_t c) {
  assert(c != 0);
  if (c == 1 || isTerm(f)) return f;
  if (f == c) return 1;
  uint32_t out;
  if (cacheLookup(Op::Restrict, f, c, 0, out)) return out;

  uint32_t lf = nodeLevel(f), lc = nodeLevel(c);
  uint32_t res;
  if (lc < lf) {
    // Sibling substitution: drop the care-set variable (it does not occur
    // in f) by merging its branches.
    uint32_t merged = iteRec(nodes_[c].lo, 1, nodes_[c].hi);
    res = restrictRec(f, merged);
  } else if (lf < lc) {
    uint32_t lo = restrictRec(nodes_[f].lo, c);
    uint32_t hi = restrictRec(nodes_[f].hi, c);
    res = mkNode(nodes_[f].var, lo, hi);
  } else {
    if (nodes_[c].lo == 0) {
      res = restrictRec(nodes_[f].hi, nodes_[c].hi);
    } else if (nodes_[c].hi == 0) {
      res = restrictRec(nodes_[f].lo, nodes_[c].lo);
    } else {
      uint32_t lo = restrictRec(nodes_[f].lo, nodes_[c].lo);
      uint32_t hi = restrictRec(nodes_[f].hi, nodes_[c].hi);
      res = mkNode(nodes_[f].var, lo, hi);
    }
  }
  cacheInsert(Op::Restrict, f, c, 0, res);
  return res;
}

// --------------------------------------------------------------- renaming

Bdd BddManager::permute(const Bdd& f, const std::vector<BddVar>& map) {
  maybeGcOrSift();
  ScopedOp guard(opDepth_);
  // Register (or find) the map so results can live in the shared cache.
  uint32_t mapId = kNil;
  for (uint32_t i = 0; i < permMaps_.size(); ++i) {
    if (permMaps_[i] == map) {
      mapId = i;
      break;
    }
  }
  if (mapId == kNil) {
    mapId = static_cast<uint32_t>(permMaps_.size());
    permMaps_.push_back(map);
  }
  return makeHandle(permuteRec(f.index(), permMaps_[mapId], mapId));
}

uint32_t BddManager::permuteRec(uint32_t f, const std::vector<BddVar>& map,
                                uint32_t mapId) {
  if (isTerm(f)) return f;
  uint32_t out;
  if (cacheLookup(Op::Permute, f, mapId, 0, out)) return out;

  uint32_t lo = permuteRec(nodes_[f].lo, map, mapId);
  uint32_t hi = permuteRec(nodes_[f].hi, map, mapId);
  BddVar v = nodes_[f].var;
  BddVar nv = v < map.size() ? map[v] : v;
  // General rename via ite keeps correctness even when the new variable is
  // not at the same level as the old one.
  uint32_t nvNode = mkNode(nv, 0, 1);
  uint32_t res = iteRec(nvNode, hi, lo);
  cacheInsert(Op::Permute, f, mapId, 0, res);
  return res;
}

// ------------------------------------------------------------ containment

bool BddManager::leq(const Bdd& f, const Bdd& g) {
  ScopedOp guard(opDepth_);
  return leqRec(f.index(), g.index());
}

bool BddManager::leqRec(uint32_t f, uint32_t g) {
  if (f == 0 || g == 1 || f == g) return true;
  if (f == 1 || g == 0) return false;
  uint32_t out;
  if (cacheLookup(Op::Leq, f, g, 0, out)) return out != 0;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  uint32_t f0 = lf == top ? nodes_[f].lo : f;
  uint32_t f1 = lf == top ? nodes_[f].hi : f;
  uint32_t g0 = lg == top ? nodes_[g].lo : g;
  uint32_t g1 = lg == top ? nodes_[g].hi : g;
  bool res = leqRec(f0, g0) && leqRec(f1, g1);
  cacheInsert(Op::Leq, f, g, 0, res ? 1 : 0);
  return res;
}

}  // namespace hsis
