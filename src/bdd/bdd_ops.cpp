// Core BDD algorithms over complement edges: specialized and/xor apply
// kernels, ite with standard-triple normalization, quantification,
// relational product, generalized cofactors, variable renaming, and
// containment — plus the fork-join parallel variants (andPar/itePar/
// andExistsPar) that split cofactor subproblems onto a task deque while a
// shared phase has a ForkJoin pool attached.
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "par/fj.hpp"

namespace hsis {

// -------------------------------------------------------------------- ite

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  assert(f.manager() == this && g.manager() == this && h.manager() == this);
  maybeGcOrSift();
  ScopedOp guard(this);
  if (parEnabled())
    return makeHandle(itePar(f.index(), g.index(), h.index(), 0));
  return makeHandle(iteRec(f.index(), g.index(), h.index()));
}

uint32_t BddManager::iteRec(uint32_t f, uint32_t g, uint32_t h) {
  // Terminal cases.
  if (f == kOneEdge) return g;
  if (f == kZeroEdge) return h;
  if (g == h) return g;
  if (g == kOneEdge && h == kZeroEdge) return f;
  if (g == kZeroEdge && h == kOneEdge) return eNot(f);

  // Collapse arms that repeat (or complement) the selector.
  if (g == f) g = kOneEdge;
  else if (g == eNot(f)) g = kZeroEdge;
  if (h == f) h = kZeroEdge;
  else if (h == eNot(f)) h = kOneEdge;
  if (g == h) return g;
  if (g == kOneEdge && h == kZeroEdge) return f;
  if (g == kZeroEdge && h == kOneEdge) return eNot(f);

  // One constant arm left: the binary kernels carry their own terminal
  // rules and symmetric-key normalization, so route there instead of
  // paying the triple-keyed cache.
  if (h == kZeroEdge) return andRec(f, g);
  if (h == kOneEdge) return eNot(andRec(f, eNot(g)));  // !f | g
  if (g == kZeroEdge) return andRec(eNot(f), h);
  if (g == kOneEdge) return orRec(f, h);
  if (g == eNot(h)) return xorRec(f, h);

  // Standard-triple normalization: a complemented selector swaps the arms;
  // a complemented then-arm factors out of the whole ite. Afterwards both
  // f and g are regular, so all equivalent calls share one cache line.
  if (eIsNeg(f)) {
    f = eNot(f);
    std::swap(g, h);
  }
  uint32_t outSign = 0;
  if (eIsNeg(g)) {
    g = eNot(g);
    h = eNot(h);
    outSign = kComplBit;
  }

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Ite, f, g, h, out, probe)) return out ^ outSign;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g), lh = nodeLevel(h);
  uint32_t top = std::min({lf, lg, lh});
  BddVar v = invPerm_[top];

  uint32_t sh = eSign(h);
  uint32_t f0 = lf == top ? nodes_[f].lo : f;
  uint32_t f1 = lf == top ? nodes_[f].hi : f;
  uint32_t g0 = lg == top ? nodes_[g].lo : g;
  uint32_t g1 = lg == top ? nodes_[g].hi : g;
  uint32_t h0 = lh == top ? nodes_[eIdx(h)].lo ^ sh : h;
  uint32_t h1 = lh == top ? nodes_[eIdx(h)].hi ^ sh : h;

  uint32_t lo = iteRec(f0, g0, h0);
  uint32_t hi = iteRec(f1, g1, h1);
  uint32_t res = mkNode(v, lo, hi);
  cacheInsert(probe, res);
  return res ^ outSign;
}

// ---------------------------------------------------------- apply kernels

Bdd BddManager::andOp(const Bdd& f, const Bdd& g) {
  maybeGcOrSift();
  ScopedOp guard(this);
  if (parEnabled()) return makeHandle(andPar(f.index(), g.index(), 0));
  return makeHandle(andRec(f.index(), g.index()));
}

Bdd BddManager::orOp(const Bdd& f, const Bdd& g) {
  maybeGcOrSift();
  ScopedOp guard(this);
  if (parEnabled())
    return makeHandle(eNot(andPar(eNot(f.index()), eNot(g.index()), 0)));
  return makeHandle(orRec(f.index(), g.index()));
}

Bdd BddManager::xorOp(const Bdd& f, const Bdd& g) {
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(xorRec(f.index(), g.index()));
}

Bdd BddManager::notOp(const Bdd& f) {
  // O(1): negation flips the complement bit. No recursion, no allocation,
  // no cache traffic — still a safe point for GC/census like every public
  // op, since those do not invalidate edges.
  maybeGcOrSift();
  return makeHandle(eNot(f.index()));
}

uint32_t BddManager::andRec(uint32_t f, uint32_t g) {
  // Terminal rules.
  if (f == kZeroEdge || g == kZeroEdge) return kZeroEdge;
  if (f == kOneEdge) return g;
  if (g == kOneEdge) return f;
  if (f == g) return f;
  if (f == eNot(g)) return kZeroEdge;

  if (f > g) std::swap(f, g);  // commutative: one cache line per pair

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::And, f, g, 0, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  BddVar v = invPerm_[top];

  uint32_t sf = eSign(f), sg = eSign(g);
  uint32_t f0 = lf == top ? nodes_[eIdx(f)].lo ^ sf : f;
  uint32_t f1 = lf == top ? nodes_[eIdx(f)].hi ^ sf : f;
  uint32_t g0 = lg == top ? nodes_[eIdx(g)].lo ^ sg : g;
  uint32_t g1 = lg == top ? nodes_[eIdx(g)].hi ^ sg : g;

  uint32_t lo = andRec(f0, g0);
  uint32_t hi = andRec(f1, g1);
  uint32_t res = mkNode(v, lo, hi);
  cacheInsert(probe, res);
  return res;
}

uint32_t BddManager::xorRec(uint32_t f, uint32_t g) {
  // Terminal rules.
  if (f == g) return kZeroEdge;
  if (f == eNot(g)) return kOneEdge;
  if (f == kZeroEdge) return g;
  if (g == kZeroEdge) return f;
  if (f == kOneEdge) return eNot(g);
  if (g == kOneEdge) return eNot(f);

  // xor ignores input polarity up to an output flip: f^g == !f^!g and
  // !(f^g) == !f^g. Strip both complement bits into the output sign so
  // all four polarity combinations share one cache line.
  uint32_t outSign = (eSign(f) ^ eSign(g));
  f = eIdx(f);
  g = eIdx(g);
  if (f > g) std::swap(f, g);  // commutative

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Xor, f, g, 0, out, probe)) return out ^ outSign;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  BddVar v = invPerm_[top];

  uint32_t f0 = lf == top ? nodes_[f].lo : f;
  uint32_t f1 = lf == top ? nodes_[f].hi : f;
  uint32_t g0 = lg == top ? nodes_[g].lo : g;
  uint32_t g1 = lg == top ? nodes_[g].hi : g;

  uint32_t lo = xorRec(f0, g0);
  uint32_t hi = xorRec(f1, g1);
  uint32_t res = mkNode(v, lo, hi);
  cacheInsert(probe, res);
  return res ^ outSign;
}

// --------------------------------------------------------- quantification

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(existsRec(f.index(), cube.index()));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  maybeGcOrSift();
  ScopedOp guard(this);
  // Duality: ∀x.f == !∃x.!f — one existential worker, shared cache.
  return makeHandle(eNot(existsRec(eNot(f.index()), cube.index())));
}

uint32_t BddManager::existsRec(uint32_t f, uint32_t cube) {
  if (isTerm(f) || cube == kOneEdge) return f;
  assert(cube != kZeroEdge && "quantifier cube must be a positive-literal product");

  // Skip cube variables above f's top.
  uint32_t lf = nodeLevel(f);
  while (!isTerm(cube) && nodeLevel(cube) < lf)
    cube = nodes_[eIdx(cube)].hi ^ eSign(cube);
  if (cube == kOneEdge) return f;

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Exists, f, cube, 0, out, probe)) return out;

  uint32_t sf = eSign(f);
  uint32_t f0 = nodes_[eIdx(f)].lo ^ sf;
  uint32_t f1 = nodes_[eIdx(f)].hi ^ sf;
  uint32_t lc = nodeLevel(cube);
  uint32_t res;
  if (lf == lc) {
    uint32_t sub = nodes_[eIdx(cube)].hi ^ eSign(cube);
    uint32_t lo = existsRec(f0, sub);
    if (lo == kOneEdge) {
      // Short-circuit: the disjunction is already everything — skip the
      // whole high-branch recursion.
      res = kOneEdge;
    } else {
      uint32_t hi = existsRec(f1, sub);
      res = orRec(lo, hi);
    }
  } else {
    uint32_t lo = existsRec(f0, cube);
    uint32_t hi = existsRec(f1, cube);
    res = mkNode(nodes_[eIdx(f)].var, lo, hi);
  }
  cacheInsert(probe, res);
  return res;
}

Bdd BddManager::andExists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  maybeGcOrSift();
  ScopedOp guard(this);
  if (parEnabled())
    return makeHandle(andExistsPar(f.index(), g.index(), cube.index(), 0));
  return makeHandle(andExistsRec(f.index(), g.index(), cube.index()));
}

uint32_t BddManager::andExistsRec(uint32_t f, uint32_t g, uint32_t cube) {
  if (f == kZeroEdge || g == kZeroEdge) return kZeroEdge;
  if (f == eNot(g)) return kZeroEdge;
  if (f == kOneEdge && g == kOneEdge) return kOneEdge;
  if (f == kOneEdge) return existsRec(g, cube);
  if (g == kOneEdge || f == g) return existsRec(f, cube);
  if (cube == kOneEdge) return andRec(f, g);

  if (f > g) std::swap(f, g);  // conjunction is commutative: normalize key
  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::AndExists, f, g, cube, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  // Advance the cube past variables above the top of f and g.
  uint32_t c = cube;
  while (!isTerm(c) && nodeLevel(c) < top)
    c = nodes_[eIdx(c)].hi ^ eSign(c);

  BddVar v = invPerm_[top];
  uint32_t sf = eSign(f), sg = eSign(g);
  uint32_t f0 = lf == top ? nodes_[eIdx(f)].lo ^ sf : f;
  uint32_t f1 = lf == top ? nodes_[eIdx(f)].hi ^ sf : f;
  uint32_t g0 = lg == top ? nodes_[eIdx(g)].lo ^ sg : g;
  uint32_t g1 = lg == top ? nodes_[eIdx(g)].hi ^ sg : g;

  uint32_t res;
  if (!isTerm(c) && nodeLevel(c) == top) {
    // Quantified variable at the top: OR the two cofactor products.
    uint32_t sub = nodes_[eIdx(c)].hi ^ eSign(c);
    uint32_t lo = andExistsRec(f0, g0, sub);
    if (lo == kOneEdge) {
      res = kOneEdge;
    } else {
      uint32_t hi = andExistsRec(f1, g1, sub);
      res = orRec(lo, hi);
    }
  } else {
    uint32_t lo = andExistsRec(f0, g0, c);
    uint32_t hi = andExistsRec(f1, g1, c);
    res = mkNode(v, lo, hi);
  }
  cacheInsert(probe, res);
  return res;
}

// ------------------------------------------------------------- cofactors

Bdd BddManager::cofactor(const Bdd& f, BddVar v, bool positive) {
  maybeGcOrSift();
  ScopedOp guard(this);
  Bdd lit = bddLiteral(v, positive);
  // Cofactor by a single literal == constrain by that literal.
  return makeHandle(constrainRec(f.index(), lit.index()));
}

Bdd BddManager::constrain(const Bdd& f, const Bdd& c) {
  if (c.isZero()) throw std::invalid_argument("constrain: care set is empty");
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(constrainRec(f.index(), c.index()));
}

uint32_t BddManager::constrainRec(uint32_t f, uint32_t c) {
  assert(c != kZeroEdge);
  if (c == kOneEdge || isTerm(f)) return f;
  if (f == c) return kOneEdge;
  if (f == eNot(c)) return kZeroEdge;
  // constrain(!f, c) == !constrain(f, c): factor the complement out so f
  // and !f share the cache.
  if (eIsNeg(f)) return eNot(constrainRec(eNot(f), c));

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Constrain, f, c, 0, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lc = nodeLevel(c);
  uint32_t sc = eSign(c);
  uint32_t c0 = isTerm(c) ? c : nodes_[eIdx(c)].lo ^ sc;
  uint32_t c1 = isTerm(c) ? c : nodes_[eIdx(c)].hi ^ sc;
  uint32_t res;
  if (lc < lf) {
    if (c0 == kZeroEdge) {
      res = constrainRec(f, c1);
    } else if (c1 == kZeroEdge) {
      res = constrainRec(f, c0);
    } else {
      uint32_t lo = constrainRec(f, c0);
      uint32_t hi = constrainRec(f, c1);
      res = mkNode(nodes_[eIdx(c)].var, lo, hi);
    }
  } else if (lf < lc) {
    uint32_t lo = constrainRec(nodes_[f].lo, c);
    uint32_t hi = constrainRec(nodes_[f].hi, c);
    res = mkNode(nodes_[f].var, lo, hi);
  } else {
    if (c0 == kZeroEdge) {
      res = constrainRec(nodes_[f].hi, c1);
    } else if (c1 == kZeroEdge) {
      res = constrainRec(nodes_[f].lo, c0);
    } else {
      uint32_t lo = constrainRec(nodes_[f].lo, c0);
      uint32_t hi = constrainRec(nodes_[f].hi, c1);
      res = mkNode(nodes_[f].var, lo, hi);
    }
  }
  cacheInsert(probe, res);
  return res;
}

Bdd BddManager::restrict(const Bdd& f, const Bdd& c) {
  if (c.isZero()) throw std::invalid_argument("restrict: care set is empty");
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(restrictRec(f.index(), c.index()));
}

uint32_t BddManager::restrictRec(uint32_t f, uint32_t c) {
  assert(c != kZeroEdge);
  if (c == kOneEdge || isTerm(f)) return f;
  if (f == c) return kOneEdge;
  if (f == eNot(c)) return kZeroEdge;
  // restrict commutes with complement on f, like constrain.
  if (eIsNeg(f)) return eNot(restrictRec(eNot(f), c));

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Restrict, f, c, 0, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lc = nodeLevel(c);
  uint32_t sc = eSign(c);
  uint32_t c0 = isTerm(c) ? c : nodes_[eIdx(c)].lo ^ sc;
  uint32_t c1 = isTerm(c) ? c : nodes_[eIdx(c)].hi ^ sc;
  uint32_t res;
  if (lc < lf) {
    // Sibling substitution: drop the care-set variable (it does not occur
    // in f) by merging its branches.
    res = restrictRec(f, orRec(c0, c1));
  } else if (lf < lc) {
    uint32_t lo = restrictRec(nodes_[f].lo, c);
    uint32_t hi = restrictRec(nodes_[f].hi, c);
    res = mkNode(nodes_[f].var, lo, hi);
  } else {
    if (c0 == kZeroEdge) {
      res = restrictRec(nodes_[f].hi, c1);
    } else if (c1 == kZeroEdge) {
      res = restrictRec(nodes_[f].lo, c0);
    } else {
      uint32_t lo = restrictRec(nodes_[f].lo, c0);
      uint32_t hi = restrictRec(nodes_[f].hi, c1);
      res = mkNode(nodes_[f].var, lo, hi);
    }
  }
  cacheInsert(probe, res);
  return res;
}

// --------------------------------------------------------------- renaming

Bdd BddManager::permute(const Bdd& f, const std::vector<BddVar>& map) {
  maybeGcOrSift();
  ScopedOp guard(this);
  // Register (or find) the map so results can live in the computed cache.
  // Map ids are process-visible state: in a shared phase the registry scan
  // and push are serialized (the deque keeps element references stable, so
  // the reference taken here outlives the lock).
  uint32_t mapId = kNil;
  const std::vector<BddVar>* mref = nullptr;
  {
    std::unique_lock<std::mutex> lk(permMu_, std::defer_lock);
    if (sharedMode_) lk.lock();
    for (uint32_t i = 0; i < permMaps_.size(); ++i) {
      if (permMaps_[i] == map) {
        mapId = i;
        break;
      }
    }
    if (mapId == kNil) {
      mapId = static_cast<uint32_t>(permMaps_.size());
      permMaps_.push_back(map);
    }
    mref = &permMaps_[mapId];
  }
  return makeHandle(permuteRec(f.index(), *mref, mapId));
}

uint32_t BddManager::permuteRec(uint32_t f, const std::vector<BddVar>& map,
                                uint32_t mapId) {
  if (isTerm(f)) return f;
  // Renaming commutes with complement: cache only regular edges.
  if (eIsNeg(f)) return eNot(permuteRec(eNot(f), map, mapId));
  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Permute, f, mapId, 0, out, probe)) return out;

  uint32_t lo = permuteRec(nodes_[f].lo, map, mapId);
  uint32_t hi = permuteRec(nodes_[f].hi, map, mapId);
  BddVar v = nodes_[f].var;
  BddVar nv = v < map.size() ? map[v] : v;
  // General rename via ite keeps correctness even when the new variable is
  // not at the same level as the old one.
  uint32_t nvEdge = mkNode(nv, kZeroEdge, kOneEdge);
  uint32_t res = iteRec(nvEdge, hi, lo);
  cacheInsert(probe, res);
  return res;
}

// ------------------------------------------------------------ containment

bool BddManager::leq(const Bdd& f, const Bdd& g) {
  ScopedOp guard(this);
  return leqRec(f.index(), g.index());
}

bool BddManager::leqRec(uint32_t f, uint32_t g) {
  if (f == kZeroEdge || g == kOneEdge || f == g) return true;
  if (f == kOneEdge || g == kZeroEdge) return false;
  if (f == eNot(g)) return false;  // f & !g == f, and f != 0 here
  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Leq, f, g, 0, out, probe)) return out != 0;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  uint32_t sf = eSign(f), sg = eSign(g);
  uint32_t f0 = lf == top ? nodes_[eIdx(f)].lo ^ sf : f;
  uint32_t f1 = lf == top ? nodes_[eIdx(f)].hi ^ sf : f;
  uint32_t g0 = lg == top ? nodes_[eIdx(g)].lo ^ sg : g;
  uint32_t g1 = lg == top ? nodes_[eIdx(g)].hi ^ sg : g;
  bool res = leqRec(f0, g0) && leqRec(f1, g1);
  cacheInsert(probe, res ? 1 : 0);
  return res;
}

// ------------------------------------------------- fork-join parallel apply
//
// The *Par workers mirror their serial kernels exactly (same terminal
// rules, same normalization, same cache keys — so parallel and serial runs
// share cached results and produce identical canonical BDDs). The only
// difference: while depth < parSplitDepth_ and the operands look larger
// than parCutoff_, the high-cofactor subproblem is forked onto the task
// deque and the low one computed in place; the join either claims the
// still-queued task and runs it inline (no handoff cost when no worker was
// free) or helps drain other tasks while waiting. Below the cutoff the
// recursion is the untouched serial kernel — fine-grained subproblems
// never pay the fork.

struct BddManager::ParTask final : par::ForkJoin::Task {
  enum class Kind : uint8_t { And, Ite, AndExists };

  BddManager* m;
  Kind kind;
  uint32_t a, b, c;
  int depth;
  uint32_t result = 0;
  std::exception_ptr error;

  ParTask(BddManager* mgr, Kind k, uint32_t aa, uint32_t bb, uint32_t cc,
          int d)
      : m(mgr), kind(k), a(aa), b(bb), c(cc), depth(d) {}

  void run() noexcept override { m->runParTask(*this); }
};

void BddManager::runParTask(ParTask& t) {
  ThreadCtx& tc = ctx();
  // Inline execution (the forker claimed its own task) continues the
  // already-entered operation; a pool worker starts a fresh task scope and
  // must gate on the shallow stop-the-world flag first.
  bool entered = false;
  if (tc.opDepth == 0) {
    enterSharedTask(tc);
    entered = true;
  }
  ++tc.opDepth;
  try {
    switch (t.kind) {
      case ParTask::Kind::And:
        t.result = andPar(t.a, t.b, t.depth);
        break;
      case ParTask::Kind::Ite:
        t.result = itePar(t.a, t.b, t.c, t.depth);
        break;
      case ParTask::Kind::AndExists:
        t.result = andExistsPar(t.a, t.b, t.c, t.depth);
        break;
    }
  } catch (...) {
    t.error = std::current_exception();
  }
  --tc.opDepth;
  if (entered) {
    flushObs(tc);
    leaveSharedOp(tc);
  }
}

void BddManager::joinParTask(ParTask& t) {
  // Still queued? Unqueue and run it right here: when every worker is busy
  // the fork degrades to plain recursion with one deque roundtrip.
  if (fj_->tryUnqueue(&t)) {
    t.run();
    t.done.store(true, std::memory_order_release);
    return;
  }
  // A worker claimed it: help drain the deque while waiting. The safe-point
  // poll keeps the joiner honest if a stop-the-world starts while it spins.
  ThreadCtx& tc = ctx();
  while (!t.done.load(std::memory_order_acquire)) {
    if (!fj_->runOne()) {
      sharedSafePoint(tc);
      std::this_thread::yield();
    }
  }
}

bool BddManager::biggerThanCutoff(std::initializer_list<uint32_t> roots) const {
  size_t cap = parCutoff_;
  if (cap == 0) return true;
  // Local capped walk with a small open-addressed visited set — the
  // per-manager visitStamp_ scratch is single-walker-only and must not be
  // touched from concurrent split decisions.
  size_t tableSize = 64;
  while (tableSize < cap * 4) tableSize <<= 1;
  std::vector<uint32_t> seen(tableSize, kNil);
  auto insert = [&](uint32_t n) -> bool {
    size_t h = (static_cast<uint64_t>(n) * 0x9e3779b97f4a7c15ull >> 32) &
               (tableSize - 1);
    while (seen[h] != kNil) {
      if (seen[h] == n) return false;
      h = (h + 1) & (tableSize - 1);
    }
    seen[h] = n;
    return true;
  };
  std::vector<uint32_t> stack;
  for (uint32_t r : roots) {
    if (!isTerm(r)) stack.push_back(eIdx(r));
  }
  size_t count = 0;
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (!insert(n)) continue;
    if (++count > cap) return true;
    const Node& nd = nodes_[n];
    uint32_t lo = eIdx(nd.lo), hi = eIdx(nd.hi);
    if (lo > 1) stack.push_back(lo);
    if (hi > 1) stack.push_back(hi);
  }
  return false;
}

uint32_t BddManager::andPar(uint32_t f, uint32_t g, int depth) {
  if (f == kZeroEdge || g == kZeroEdge) return kZeroEdge;
  if (f == kOneEdge) return g;
  if (g == kOneEdge) return f;
  if (f == g) return f;
  if (f == eNot(g)) return kZeroEdge;
  if (depth >= parSplitDepth_ || !biggerThanCutoff({f, g}))
    return andRec(f, g);

  if (f > g) std::swap(f, g);
  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::And, f, g, 0, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  BddVar v = invPerm_[top];
  uint32_t sf = eSign(f), sg = eSign(g);
  uint32_t f0 = lf == top ? nodes_[eIdx(f)].lo ^ sf : f;
  uint32_t f1 = lf == top ? nodes_[eIdx(f)].hi ^ sf : f;
  uint32_t g0 = lg == top ? nodes_[eIdx(g)].lo ^ sg : g;
  uint32_t g1 = lg == top ? nodes_[eIdx(g)].hi ^ sg : g;

  ParTask t(this, ParTask::Kind::And, f1, g1, 0, depth + 1);
  fj_->submit(&t);
  uint32_t lo;
  try {
    lo = andPar(f0, g0, depth + 1);
  } catch (...) {
    // The task points into this frame: it must complete before unwinding.
    joinParTask(t);
    throw;
  }
  joinParTask(t);
  if (t.error) std::rethrow_exception(t.error);
  uint32_t res = mkNode(v, lo, t.result);
  cacheInsert(probe, res);
  return res;
}

uint32_t BddManager::itePar(uint32_t f, uint32_t g, uint32_t h, int depth) {
  if (f == kOneEdge) return g;
  if (f == kZeroEdge) return h;
  if (g == h) return g;
  if (g == kOneEdge && h == kZeroEdge) return f;
  if (g == kZeroEdge && h == kOneEdge) return eNot(f);

  if (g == f) g = kOneEdge;
  else if (g == eNot(f)) g = kZeroEdge;
  if (h == f) h = kZeroEdge;
  else if (h == eNot(f)) h = kOneEdge;
  if (g == h) return g;
  if (g == kOneEdge && h == kZeroEdge) return f;
  if (g == kZeroEdge && h == kOneEdge) return eNot(f);

  // Route to the parallel binary kernels exactly like the serial version.
  if (h == kZeroEdge) return andPar(f, g, depth);
  if (h == kOneEdge) return eNot(andPar(f, eNot(g), depth));
  if (g == kZeroEdge) return andPar(eNot(f), h, depth);
  if (g == kOneEdge) return eNot(andPar(eNot(f), eNot(h), depth));
  if (g == eNot(h)) return xorRec(f, h);  // xor stays serial: rare in ite

  if (depth >= parSplitDepth_ || !biggerThanCutoff({f, g, h}))
    return iteRec(f, g, h);

  if (eIsNeg(f)) {
    f = eNot(f);
    std::swap(g, h);
  }
  uint32_t outSign = 0;
  if (eIsNeg(g)) {
    g = eNot(g);
    h = eNot(h);
    outSign = kComplBit;
  }

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Ite, f, g, h, out, probe)) return out ^ outSign;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g), lh = nodeLevel(h);
  uint32_t top = std::min({lf, lg, lh});
  BddVar v = invPerm_[top];

  uint32_t sh = eSign(h);
  uint32_t f0 = lf == top ? nodes_[f].lo : f;
  uint32_t f1 = lf == top ? nodes_[f].hi : f;
  uint32_t g0 = lg == top ? nodes_[g].lo : g;
  uint32_t g1 = lg == top ? nodes_[g].hi : g;
  uint32_t h0 = lh == top ? nodes_[eIdx(h)].lo ^ sh : h;
  uint32_t h1 = lh == top ? nodes_[eIdx(h)].hi ^ sh : h;

  ParTask t(this, ParTask::Kind::Ite, f1, g1, h1, depth + 1);
  fj_->submit(&t);
  uint32_t lo;
  try {
    lo = itePar(f0, g0, h0, depth + 1);
  } catch (...) {
    joinParTask(t);
    throw;
  }
  joinParTask(t);
  if (t.error) std::rethrow_exception(t.error);
  uint32_t res = mkNode(v, lo, t.result);
  cacheInsert(probe, res);
  return res ^ outSign;
}

uint32_t BddManager::andExistsPar(uint32_t f, uint32_t g, uint32_t cube,
                                  int depth) {
  if (f == kZeroEdge || g == kZeroEdge) return kZeroEdge;
  if (f == eNot(g)) return kZeroEdge;
  if (f == kOneEdge && g == kOneEdge) return kOneEdge;
  if (f == kOneEdge) return existsRec(g, cube);
  if (g == kOneEdge || f == g) return existsRec(f, cube);
  if (cube == kOneEdge) return andPar(f, g, depth);
  if (depth >= parSplitDepth_ || !biggerThanCutoff({f, g}))
    return andExistsRec(f, g, cube);

  if (f > g) std::swap(f, g);
  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::AndExists, f, g, cube, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  uint32_t c = cube;
  while (!isTerm(c) && nodeLevel(c) < top)
    c = nodes_[eIdx(c)].hi ^ eSign(c);

  BddVar v = invPerm_[top];
  uint32_t sf = eSign(f), sg = eSign(g);
  uint32_t f0 = lf == top ? nodes_[eIdx(f)].lo ^ sf : f;
  uint32_t f1 = lf == top ? nodes_[eIdx(f)].hi ^ sf : f;
  uint32_t g0 = lg == top ? nodes_[eIdx(g)].lo ^ sg : g;
  uint32_t g1 = lg == top ? nodes_[eIdx(g)].hi ^ sg : g;

  uint32_t res;
  if (!isTerm(c) && nodeLevel(c) == top) {
    // Quantified variable at the top: OR the two cofactor products. The
    // serial lo == 1 short-circuit is deliberately dropped — both branches
    // run concurrently, trading the occasional skipped subtree for overlap.
    uint32_t sub = nodes_[eIdx(c)].hi ^ eSign(c);
    ParTask t(this, ParTask::Kind::AndExists, f1, g1, sub, depth + 1);
    fj_->submit(&t);
    uint32_t lo;
    try {
      lo = andExistsPar(f0, g0, sub, depth + 1);
    } catch (...) {
      joinParTask(t);
      throw;
    }
    joinParTask(t);
    if (t.error) std::rethrow_exception(t.error);
    res = orRec(lo, t.result);
  } else {
    ParTask t(this, ParTask::Kind::AndExists, f1, g1, c, depth + 1);
    fj_->submit(&t);
    uint32_t lo;
    try {
      lo = andExistsPar(f0, g0, c, depth + 1);
    } catch (...) {
      joinParTask(t);
      throw;
    }
    joinParTask(t);
    if (t.error) std::rethrow_exception(t.error);
    res = mkNode(v, lo, t.result);
  }
  cacheInsert(probe, res);
  return res;
}

}  // namespace hsis
