// Core BDD algorithms over complement edges: specialized and/xor apply
// kernels, ite with standard-triple normalization, quantification,
// relational product, generalized cofactors, variable renaming, and
// containment.
#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hsis {

// -------------------------------------------------------------------- ite

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  assert(f.manager() == this && g.manager() == this && h.manager() == this);
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(iteRec(f.index(), g.index(), h.index()));
}

uint32_t BddManager::iteRec(uint32_t f, uint32_t g, uint32_t h) {
  // Terminal cases.
  if (f == kOneEdge) return g;
  if (f == kZeroEdge) return h;
  if (g == h) return g;
  if (g == kOneEdge && h == kZeroEdge) return f;
  if (g == kZeroEdge && h == kOneEdge) return eNot(f);

  // Collapse arms that repeat (or complement) the selector.
  if (g == f) g = kOneEdge;
  else if (g == eNot(f)) g = kZeroEdge;
  if (h == f) h = kZeroEdge;
  else if (h == eNot(f)) h = kOneEdge;
  if (g == h) return g;
  if (g == kOneEdge && h == kZeroEdge) return f;
  if (g == kZeroEdge && h == kOneEdge) return eNot(f);

  // One constant arm left: the binary kernels carry their own terminal
  // rules and symmetric-key normalization, so route there instead of
  // paying the triple-keyed cache.
  if (h == kZeroEdge) return andRec(f, g);
  if (h == kOneEdge) return eNot(andRec(f, eNot(g)));  // !f | g
  if (g == kZeroEdge) return andRec(eNot(f), h);
  if (g == kOneEdge) return orRec(f, h);
  if (g == eNot(h)) return xorRec(f, h);

  // Standard-triple normalization: a complemented selector swaps the arms;
  // a complemented then-arm factors out of the whole ite. Afterwards both
  // f and g are regular, so all equivalent calls share one cache line.
  if (eIsNeg(f)) {
    f = eNot(f);
    std::swap(g, h);
  }
  uint32_t outSign = 0;
  if (eIsNeg(g)) {
    g = eNot(g);
    h = eNot(h);
    outSign = kComplBit;
  }

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Ite, f, g, h, out, probe)) return out ^ outSign;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g), lh = nodeLevel(h);
  uint32_t top = std::min({lf, lg, lh});
  BddVar v = invPerm_[top];

  uint32_t sh = eSign(h);
  uint32_t f0 = lf == top ? nodes_[f].lo : f;
  uint32_t f1 = lf == top ? nodes_[f].hi : f;
  uint32_t g0 = lg == top ? nodes_[g].lo : g;
  uint32_t g1 = lg == top ? nodes_[g].hi : g;
  uint32_t h0 = lh == top ? nodes_[eIdx(h)].lo ^ sh : h;
  uint32_t h1 = lh == top ? nodes_[eIdx(h)].hi ^ sh : h;

  uint32_t lo = iteRec(f0, g0, h0);
  uint32_t hi = iteRec(f1, g1, h1);
  uint32_t res = mkNode(v, lo, hi);
  cacheInsert(probe, res);
  return res ^ outSign;
}

// ---------------------------------------------------------- apply kernels

Bdd BddManager::andOp(const Bdd& f, const Bdd& g) {
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(andRec(f.index(), g.index()));
}

Bdd BddManager::orOp(const Bdd& f, const Bdd& g) {
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(orRec(f.index(), g.index()));
}

Bdd BddManager::xorOp(const Bdd& f, const Bdd& g) {
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(xorRec(f.index(), g.index()));
}

Bdd BddManager::notOp(const Bdd& f) {
  // O(1): negation flips the complement bit. No recursion, no allocation,
  // no cache traffic — still a safe point for GC/census like every public
  // op, since those do not invalidate edges.
  maybeGcOrSift();
  return makeHandle(eNot(f.index()));
}

uint32_t BddManager::andRec(uint32_t f, uint32_t g) {
  // Terminal rules.
  if (f == kZeroEdge || g == kZeroEdge) return kZeroEdge;
  if (f == kOneEdge) return g;
  if (g == kOneEdge) return f;
  if (f == g) return f;
  if (f == eNot(g)) return kZeroEdge;

  if (f > g) std::swap(f, g);  // commutative: one cache line per pair

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::And, f, g, 0, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  BddVar v = invPerm_[top];

  uint32_t sf = eSign(f), sg = eSign(g);
  uint32_t f0 = lf == top ? nodes_[eIdx(f)].lo ^ sf : f;
  uint32_t f1 = lf == top ? nodes_[eIdx(f)].hi ^ sf : f;
  uint32_t g0 = lg == top ? nodes_[eIdx(g)].lo ^ sg : g;
  uint32_t g1 = lg == top ? nodes_[eIdx(g)].hi ^ sg : g;

  uint32_t lo = andRec(f0, g0);
  uint32_t hi = andRec(f1, g1);
  uint32_t res = mkNode(v, lo, hi);
  cacheInsert(probe, res);
  return res;
}

uint32_t BddManager::xorRec(uint32_t f, uint32_t g) {
  // Terminal rules.
  if (f == g) return kZeroEdge;
  if (f == eNot(g)) return kOneEdge;
  if (f == kZeroEdge) return g;
  if (g == kZeroEdge) return f;
  if (f == kOneEdge) return eNot(g);
  if (g == kOneEdge) return eNot(f);

  // xor ignores input polarity up to an output flip: f^g == !f^!g and
  // !(f^g) == !f^g. Strip both complement bits into the output sign so
  // all four polarity combinations share one cache line.
  uint32_t outSign = (eSign(f) ^ eSign(g));
  f = eIdx(f);
  g = eIdx(g);
  if (f > g) std::swap(f, g);  // commutative

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Xor, f, g, 0, out, probe)) return out ^ outSign;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  BddVar v = invPerm_[top];

  uint32_t f0 = lf == top ? nodes_[f].lo : f;
  uint32_t f1 = lf == top ? nodes_[f].hi : f;
  uint32_t g0 = lg == top ? nodes_[g].lo : g;
  uint32_t g1 = lg == top ? nodes_[g].hi : g;

  uint32_t lo = xorRec(f0, g0);
  uint32_t hi = xorRec(f1, g1);
  uint32_t res = mkNode(v, lo, hi);
  cacheInsert(probe, res);
  return res ^ outSign;
}

// --------------------------------------------------------- quantification

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(existsRec(f.index(), cube.index()));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  maybeGcOrSift();
  ScopedOp guard(this);
  // Duality: ∀x.f == !∃x.!f — one existential worker, shared cache.
  return makeHandle(eNot(existsRec(eNot(f.index()), cube.index())));
}

uint32_t BddManager::existsRec(uint32_t f, uint32_t cube) {
  if (isTerm(f) || cube == kOneEdge) return f;
  assert(cube != kZeroEdge && "quantifier cube must be a positive-literal product");

  // Skip cube variables above f's top.
  uint32_t lf = nodeLevel(f);
  while (!isTerm(cube) && nodeLevel(cube) < lf)
    cube = nodes_[eIdx(cube)].hi ^ eSign(cube);
  if (cube == kOneEdge) return f;

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Exists, f, cube, 0, out, probe)) return out;

  uint32_t sf = eSign(f);
  uint32_t f0 = nodes_[eIdx(f)].lo ^ sf;
  uint32_t f1 = nodes_[eIdx(f)].hi ^ sf;
  uint32_t lc = nodeLevel(cube);
  uint32_t res;
  if (lf == lc) {
    uint32_t sub = nodes_[eIdx(cube)].hi ^ eSign(cube);
    uint32_t lo = existsRec(f0, sub);
    if (lo == kOneEdge) {
      // Short-circuit: the disjunction is already everything — skip the
      // whole high-branch recursion.
      res = kOneEdge;
    } else {
      uint32_t hi = existsRec(f1, sub);
      res = orRec(lo, hi);
    }
  } else {
    uint32_t lo = existsRec(f0, cube);
    uint32_t hi = existsRec(f1, cube);
    res = mkNode(nodes_[eIdx(f)].var, lo, hi);
  }
  cacheInsert(probe, res);
  return res;
}

Bdd BddManager::andExists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(andExistsRec(f.index(), g.index(), cube.index()));
}

uint32_t BddManager::andExistsRec(uint32_t f, uint32_t g, uint32_t cube) {
  if (f == kZeroEdge || g == kZeroEdge) return kZeroEdge;
  if (f == eNot(g)) return kZeroEdge;
  if (f == kOneEdge && g == kOneEdge) return kOneEdge;
  if (f == kOneEdge) return existsRec(g, cube);
  if (g == kOneEdge || f == g) return existsRec(f, cube);
  if (cube == kOneEdge) return andRec(f, g);

  if (f > g) std::swap(f, g);  // conjunction is commutative: normalize key
  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::AndExists, f, g, cube, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  // Advance the cube past variables above the top of f and g.
  uint32_t c = cube;
  while (!isTerm(c) && nodeLevel(c) < top)
    c = nodes_[eIdx(c)].hi ^ eSign(c);

  BddVar v = invPerm_[top];
  uint32_t sf = eSign(f), sg = eSign(g);
  uint32_t f0 = lf == top ? nodes_[eIdx(f)].lo ^ sf : f;
  uint32_t f1 = lf == top ? nodes_[eIdx(f)].hi ^ sf : f;
  uint32_t g0 = lg == top ? nodes_[eIdx(g)].lo ^ sg : g;
  uint32_t g1 = lg == top ? nodes_[eIdx(g)].hi ^ sg : g;

  uint32_t res;
  if (!isTerm(c) && nodeLevel(c) == top) {
    // Quantified variable at the top: OR the two cofactor products.
    uint32_t sub = nodes_[eIdx(c)].hi ^ eSign(c);
    uint32_t lo = andExistsRec(f0, g0, sub);
    if (lo == kOneEdge) {
      res = kOneEdge;
    } else {
      uint32_t hi = andExistsRec(f1, g1, sub);
      res = orRec(lo, hi);
    }
  } else {
    uint32_t lo = andExistsRec(f0, g0, c);
    uint32_t hi = andExistsRec(f1, g1, c);
    res = mkNode(v, lo, hi);
  }
  cacheInsert(probe, res);
  return res;
}

// ------------------------------------------------------------- cofactors

Bdd BddManager::cofactor(const Bdd& f, BddVar v, bool positive) {
  maybeGcOrSift();
  ScopedOp guard(this);
  Bdd lit = bddLiteral(v, positive);
  // Cofactor by a single literal == constrain by that literal.
  return makeHandle(constrainRec(f.index(), lit.index()));
}

Bdd BddManager::constrain(const Bdd& f, const Bdd& c) {
  if (c.isZero()) throw std::invalid_argument("constrain: care set is empty");
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(constrainRec(f.index(), c.index()));
}

uint32_t BddManager::constrainRec(uint32_t f, uint32_t c) {
  assert(c != kZeroEdge);
  if (c == kOneEdge || isTerm(f)) return f;
  if (f == c) return kOneEdge;
  if (f == eNot(c)) return kZeroEdge;
  // constrain(!f, c) == !constrain(f, c): factor the complement out so f
  // and !f share the cache.
  if (eIsNeg(f)) return eNot(constrainRec(eNot(f), c));

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Constrain, f, c, 0, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lc = nodeLevel(c);
  uint32_t sc = eSign(c);
  uint32_t c0 = isTerm(c) ? c : nodes_[eIdx(c)].lo ^ sc;
  uint32_t c1 = isTerm(c) ? c : nodes_[eIdx(c)].hi ^ sc;
  uint32_t res;
  if (lc < lf) {
    if (c0 == kZeroEdge) {
      res = constrainRec(f, c1);
    } else if (c1 == kZeroEdge) {
      res = constrainRec(f, c0);
    } else {
      uint32_t lo = constrainRec(f, c0);
      uint32_t hi = constrainRec(f, c1);
      res = mkNode(nodes_[eIdx(c)].var, lo, hi);
    }
  } else if (lf < lc) {
    uint32_t lo = constrainRec(nodes_[f].lo, c);
    uint32_t hi = constrainRec(nodes_[f].hi, c);
    res = mkNode(nodes_[f].var, lo, hi);
  } else {
    if (c0 == kZeroEdge) {
      res = constrainRec(nodes_[f].hi, c1);
    } else if (c1 == kZeroEdge) {
      res = constrainRec(nodes_[f].lo, c0);
    } else {
      uint32_t lo = constrainRec(nodes_[f].lo, c0);
      uint32_t hi = constrainRec(nodes_[f].hi, c1);
      res = mkNode(nodes_[f].var, lo, hi);
    }
  }
  cacheInsert(probe, res);
  return res;
}

Bdd BddManager::restrict(const Bdd& f, const Bdd& c) {
  if (c.isZero()) throw std::invalid_argument("restrict: care set is empty");
  maybeGcOrSift();
  ScopedOp guard(this);
  return makeHandle(restrictRec(f.index(), c.index()));
}

uint32_t BddManager::restrictRec(uint32_t f, uint32_t c) {
  assert(c != kZeroEdge);
  if (c == kOneEdge || isTerm(f)) return f;
  if (f == c) return kOneEdge;
  if (f == eNot(c)) return kZeroEdge;
  // restrict commutes with complement on f, like constrain.
  if (eIsNeg(f)) return eNot(restrictRec(eNot(f), c));

  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Restrict, f, c, 0, out, probe)) return out;

  uint32_t lf = nodeLevel(f), lc = nodeLevel(c);
  uint32_t sc = eSign(c);
  uint32_t c0 = isTerm(c) ? c : nodes_[eIdx(c)].lo ^ sc;
  uint32_t c1 = isTerm(c) ? c : nodes_[eIdx(c)].hi ^ sc;
  uint32_t res;
  if (lc < lf) {
    // Sibling substitution: drop the care-set variable (it does not occur
    // in f) by merging its branches.
    res = restrictRec(f, orRec(c0, c1));
  } else if (lf < lc) {
    uint32_t lo = restrictRec(nodes_[f].lo, c);
    uint32_t hi = restrictRec(nodes_[f].hi, c);
    res = mkNode(nodes_[f].var, lo, hi);
  } else {
    if (c0 == kZeroEdge) {
      res = restrictRec(nodes_[f].hi, c1);
    } else if (c1 == kZeroEdge) {
      res = restrictRec(nodes_[f].lo, c0);
    } else {
      uint32_t lo = restrictRec(nodes_[f].lo, c0);
      uint32_t hi = restrictRec(nodes_[f].hi, c1);
      res = mkNode(nodes_[f].var, lo, hi);
    }
  }
  cacheInsert(probe, res);
  return res;
}

// --------------------------------------------------------------- renaming

Bdd BddManager::permute(const Bdd& f, const std::vector<BddVar>& map) {
  maybeGcOrSift();
  ScopedOp guard(this);
  // Register (or find) the map so results can live in the shared cache.
  uint32_t mapId = kNil;
  for (uint32_t i = 0; i < permMaps_.size(); ++i) {
    if (permMaps_[i] == map) {
      mapId = i;
      break;
    }
  }
  if (mapId == kNil) {
    mapId = static_cast<uint32_t>(permMaps_.size());
    permMaps_.push_back(map);
  }
  return makeHandle(permuteRec(f.index(), permMaps_[mapId], mapId));
}

uint32_t BddManager::permuteRec(uint32_t f, const std::vector<BddVar>& map,
                                uint32_t mapId) {
  if (isTerm(f)) return f;
  // Renaming commutes with complement: cache only regular edges.
  if (eIsNeg(f)) return eNot(permuteRec(eNot(f), map, mapId));
  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Permute, f, mapId, 0, out, probe)) return out;

  uint32_t lo = permuteRec(nodes_[f].lo, map, mapId);
  uint32_t hi = permuteRec(nodes_[f].hi, map, mapId);
  BddVar v = nodes_[f].var;
  BddVar nv = v < map.size() ? map[v] : v;
  // General rename via ite keeps correctness even when the new variable is
  // not at the same level as the old one.
  uint32_t nvEdge = mkNode(nv, kZeroEdge, kOneEdge);
  uint32_t res = iteRec(nvEdge, hi, lo);
  cacheInsert(probe, res);
  return res;
}

// ------------------------------------------------------------ containment

bool BddManager::leq(const Bdd& f, const Bdd& g) {
  ScopedOp guard(this);
  return leqRec(f.index(), g.index());
}

bool BddManager::leqRec(uint32_t f, uint32_t g) {
  if (f == kZeroEdge || g == kOneEdge || f == g) return true;
  if (f == kOneEdge || g == kZeroEdge) return false;
  if (f == eNot(g)) return false;  // f & !g == f, and f != 0 here
  uint32_t out;
  CacheProbe probe;
  if (cacheLookup(Op::Leq, f, g, 0, out, probe)) return out != 0;

  uint32_t lf = nodeLevel(f), lg = nodeLevel(g);
  uint32_t top = std::min(lf, lg);
  uint32_t sf = eSign(f), sg = eSign(g);
  uint32_t f0 = lf == top ? nodes_[eIdx(f)].lo ^ sf : f;
  uint32_t f1 = lf == top ? nodes_[eIdx(f)].hi ^ sf : f;
  uint32_t g0 = lg == top ? nodes_[eIdx(g)].lo ^ sg : g;
  uint32_t g1 = lg == top ? nodes_[eIdx(g)].hi ^ sg : g;
  bool res = leqRec(f0, g0) && leqRec(f1, g1);
  cacheInsert(probe, res ? 1 : 0);
  return res;
}

}  // namespace hsis
