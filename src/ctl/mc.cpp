#include "ctl/mc.hpp"

#include <cstdlib>
#include <stdexcept>

#include "obs/control.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace hsis {

CtlChecker::CtlChecker(const Fsm& fsm, const TransitionRelation& tr,
                       std::vector<Bdd> fairnessConstraints, McOptions options)
    : fsm_(&fsm), tr_(&tr), fair_(std::move(fairnessConstraints)), opts_(options) {
  if (fair_.empty()) fair_.push_back(fsm.mgr().bddOne());
  activeTr_ = tr_;
  // Coverage's frontier series folds to a no-op in disabled builds and
  // under the HSIS_COV_DISABLE runtime toggle.
  opts_.recordFrontierStates = opts_.recordFrontierStates && obs::kEnabled &&
                               std::getenv("HSIS_COV_DISABLE") == nullptr;
}

const Bdd& CtlChecker::reached() {
  if (reached_.isNull()) {
    obs::Span span("ctl.reach");
    ReachOptions ro;
    ro.keepOnionRings = opts_.wantTrace;
    ro.recordFrontierStates = opts_.recordFrontierStates;
    ReachResult r = reachableStates(*tr_, fsm_->initialStates(), ro);
    reached_ = r.reached;
    onionRings_ = std::move(r.onionRings);
    frontierStates_ = std::move(r.frontierStates);
    stats_.reachabilitySteps = r.depth;
    if (opts_.useReachedDontCares) {
      minimizedTr_ = tr_->minimized(reached_);
      activeTr_ = &*minimizedTr_;
    }
  }
  return reached_;
}

void CtlChecker::seedReachability(Bdd reached, std::vector<Bdd> onionRings,
                                  std::vector<double> frontierStates,
                                  size_t steps) {
  if (!reached_.isNull())
    throw std::logic_error(
        "CtlChecker::seedReachability: reachability already computed");
  reached_ = std::move(reached);
  onionRings_ = std::move(onionRings);
  frontierStates_ = std::move(frontierStates);
  stats_.reachabilitySteps = steps;
  if (opts_.useReachedDontCares) {
    minimizedTr_ = tr_->minimized(reached_);
    activeTr_ = &*minimizedTr_;
  }
}

Bdd CtlChecker::preimage(const Bdd& s) {
  ++stats_.preimageCalls;
  static obs::Counter& calls = obs::counter("ctl.preimage.calls");
  calls.add();
  return activeTr_->preimage(s);
}

Bdd CtlChecker::eu(const Bdd& p, const Bdd& q) {
  static obs::Counter& iterations = obs::counter("ctl.eu.iterations");
  obs::Span span("ctl.eu");
  Bdd y = q;
  uint64_t steps = 0;
  while (true) {
    obs::checkAbort();
    ++stats_.fixpointIterations;
    iterations.add();
    ++steps;
    Bdd y2 = y | (p & preimage(y));
    if (y2 == y) {
      HSIS_LOG_DEBUG("ctl.eu", "least fixpoint converged",
                     {{"iterations", steps}, {"nodes", y.nodeCount()}});
      return y;
    }
    y = std::move(y2);
  }
}

Bdd CtlChecker::egFair(const Bdd& p) {
  static obs::Counter& iterations = obs::counter("ctl.eg.iterations");
  obs::Span span("ctl.eg");
  Bdd care = opts_.useReachedDontCares ? reached() : fsm_->mgr().bddOne();
  Bdd z = p & care;
  while (true) {
    obs::checkAbort();
    ++stats_.fixpointIterations;
    iterations.add();
    Bdd zOld = z;
    for (const Bdd& c : fair_) {
      // Z := Z ∧ EX E[p U (Z ∧ c)] — Emerson-Lei iteration step.
      z &= preimage(eu(p & care, z & c));
    }
    z &= p;
    if (z == zOld) {
      HSIS_LOG_DEBUG("ctl.eg", "greatest fixpoint converged",
                     {{"fairness_constraints", fair_.size()},
                      {"nodes", z.nodeCount()}});
      return z;
    }
  }
}

const Bdd& CtlChecker::fairStates() {
  if (!fairStatesComputed_) {
    fairStates_ = egFair(opts_.useReachedDontCares ? reached()
                                                   : fsm_->mgr().bddOne());
    fairStatesComputed_ = true;
  }
  return fairStates_;
}

Bdd CtlChecker::statesRec(const CtlFormula& f) {
  BddManager& mgr = fsm_->mgr();
  Bdd care = opts_.useReachedDontCares ? reached() : mgr.bddOne();
  switch (f.kind) {
    case CtlFormula::Kind::True:
      return care;
    case CtlFormula::Kind::False:
      return mgr.bddZero();
    case CtlFormula::Kind::Atom:
      return evalSigExpr(*f.atom, *fsm_) & care;
    case CtlFormula::Kind::Not:
      return care & !statesRec(*f.left);
    case CtlFormula::Kind::And:
      return statesRec(*f.left) & statesRec(*f.right);
    case CtlFormula::Kind::Or:
      return statesRec(*f.left) | statesRec(*f.right);
    case CtlFormula::Kind::EX:
      return care & preimage(statesRec(*f.left) & fairStates());
    case CtlFormula::Kind::EG:
      return egFair(statesRec(*f.left));
    case CtlFormula::Kind::EU:
      return care &
             eu(statesRec(*f.left), statesRec(*f.right) & fairStates());
    case CtlFormula::Kind::EF:
      return care & eu(care, statesRec(*f.left) & fairStates());
    case CtlFormula::Kind::AX:
      // AX p = ¬ EX ¬p (over fair paths)
      return care & !preimage(care & !statesRec(*f.left) & fairStates());
    case CtlFormula::Kind::AG: {
      // AG p = ¬EF¬p
      Bdd notP = care & !statesRec(*f.left);
      return care & !eu(care, notP & fairStates());
    }
    case CtlFormula::Kind::AF: {
      // AF p = ¬EG¬p
      Bdd notP = care & !statesRec(*f.left);
      return care & !egFair(notP);
    }
    case CtlFormula::Kind::AU: {
      // A[p U q] = ¬( E[¬q U ¬p∧¬q] ∨ EG¬q )
      Bdd p = statesRec(*f.left);
      Bdd q = statesRec(*f.right);
      Bdd notP = care & !p;
      Bdd notQ = care & !q;
      Bdd eu1 = eu(notQ, notP & notQ & fairStates());
      Bdd eg1 = egFair(notQ);
      return care & !(eu1 | eg1);
    }
  }
  return mgr.bddZero();
}

Bdd CtlChecker::states(const CtlRef& formula) { return statesRec(*formula); }

McResult CtlChecker::checkInvariantEarly(const CtlRef& formula) {
  // AG p with propositional p: check p on every frontier and stop at the
  // first violation — Early Failure Detection, technique 1.
  McResult res;
  Bdd p = evalPropositional(formula->left);
  Bdd notP = !p;

  std::vector<Bdd> rings;
  Bdd violating;
  ReachOptions ro;
  ro.keepOnionRings = false;
  ro.watch = [&](const Bdd& frontier, size_t) {
    rings.push_back(frontier);
    Bdd bad = frontier & notP;
    if (!bad.isZero()) {
      violating = bad;
      return true;
    }
    return false;
  };
  ReachResult rr = reachableStates(*tr_, fsm_->initialStates(), ro);
  stats_.reachabilitySteps = rr.depth;
  res.stats = stats_;
  if (violating.isNull()) {
    res.holds = true;
    // The full reachable set came out of the EFD run; keep it.
    if (reached_.isNull()) {
      reached_ = rr.reached;
      onionRings_ = std::move(rings);
      if (opts_.useReachedDontCares) {
        minimizedTr_ = tr_->minimized(reached_);
        activeTr_ = &*minimizedTr_;
      }
    }
    res.satisfying = rr.reached & p;
    return res;
  }
  res.holds = false;
  res.stats.usedEarlyFailure = true;
  if (opts_.wantTrace) {
    // Shortest path: backtrack through the rings we already have.
    TransitionRelation const& tr = *tr_;
    const Fsm& fsm = *fsm_;
    Trace trace;
    std::vector<std::vector<int8_t>> rev;
    std::vector<int8_t> curAssign = concretizeState(fsm, violating);
    Bdd cur = fsm.stateFromValues(fsm.decodeState(curAssign));
    rev.push_back(curAssign);
    for (size_t k = rings.size() - 1; k-- > 0;) {
      Bdd prev = rings[k] & tr.preimage(cur);
      curAssign = concretizeState(fsm, prev);
      cur = fsm.stateFromValues(fsm.decodeState(curAssign));
      rev.push_back(curAssign);
    }
    for (size_t i = rev.size(); i-- > 0;) trace.states.push_back(rev[i]);
    attachInputs(fsm, trace);
    res.counterexample = std::move(trace);
  }
  return res;
}

Bdd CtlChecker::evalPropositional(const CtlRef& f) {
  BddManager& mgr = fsm_->mgr();
  switch (f->kind) {
    case CtlFormula::Kind::True:
      return mgr.bddOne();
    case CtlFormula::Kind::False:
      return mgr.bddZero();
    case CtlFormula::Kind::Atom:
      return evalSigExpr(*f->atom, *fsm_);
    case CtlFormula::Kind::Not:
      return !evalPropositional(f->left);
    case CtlFormula::Kind::And:
      return evalPropositional(f->left) & evalPropositional(f->right);
    case CtlFormula::Kind::Or:
      return evalPropositional(f->left) | evalPropositional(f->right);
    default:
      throw std::logic_error("evalPropositional: temporal operator");
  }
}

McResult CtlChecker::check(const CtlRef& formula) {
  obs::Span span("ctl.check");
  static obs::Counter& checks = obs::counter("ctl.checks");
  checks.add();
  auto start = std::chrono::steady_clock::now();
  McResult res;
  if (opts_.earlyFailureDetection && formula->isInvariant()) {
    res = checkInvariantEarly(formula);
    if (res.stats.usedEarlyFailure) obs::counter("ctl.efd.failures").add();
  } else {
    Bdd sat = states(formula);
    Bdd init = fsm_->initialStates();
    res.holds = init.leq(sat);
    res.satisfying = sat;
    res.stats = stats_;
    if (!res.holds && opts_.wantTrace) {
      // Counterexamples for the common universal patterns.
      const CtlFormula& f = *formula;
      if (f.kind == CtlFormula::Kind::AG) {
        Bdd notP = reached() & !statesRec(*f.left);
        res.counterexample = shortestPathTo(*tr_, init & !sat, notP);
      } else if (f.kind == CtlFormula::Kind::AF) {
        // Witness of EG ¬p: a fair lasso inside the EG hull.
        Bdd hull = egFair(reached() & !statesRec(*f.left));
        res.counterexample =
            fairLasso(*tr_, init & !sat, hull, fair_);
      }
    }
  }
  res.stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stats_ = res.stats;
  HSIS_LOG_INFO("ctl.check", "property checked",
                {{"holds", res.holds},
                 {"fixpoint_iterations", res.stats.fixpointIterations},
                 {"early_failure", res.stats.usedEarlyFailure},
                 {"seconds", res.stats.seconds}});
  return res;
}

}  // namespace hsis
