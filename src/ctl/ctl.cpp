#include "ctl/ctl.hpp"

#include <cctype>
#include <stdexcept>

namespace hsis {

namespace {

std::shared_ptr<CtlFormula> mk(CtlFormula::Kind k) {
  auto f = std::make_shared<CtlFormula>();
  f->kind = k;
  return f;
}

std::shared_ptr<CtlFormula> mk1(CtlFormula::Kind k, CtlRef a) {
  auto f = mk(k);
  f->left = std::move(a);
  return f;
}

std::shared_ptr<CtlFormula> mk2(CtlFormula::Kind k, CtlRef a, CtlRef b) {
  auto f = mk(k);
  f->left = std::move(a);
  f->right = std::move(b);
  return f;
}

}  // namespace

CtlRef ctlTrue() { return mk(CtlFormula::Kind::True); }
CtlRef ctlFalse() { return mk(CtlFormula::Kind::False); }

CtlRef ctlAtom(SigExprRef a) {
  auto f = mk(CtlFormula::Kind::Atom);
  f->atom = std::move(a);
  return f;
}

CtlRef ctlNot(CtlRef a) { return mk1(CtlFormula::Kind::Not, std::move(a)); }
CtlRef ctlAnd(CtlRef a, CtlRef b) {
  return mk2(CtlFormula::Kind::And, std::move(a), std::move(b));
}
CtlRef ctlOr(CtlRef a, CtlRef b) {
  return mk2(CtlFormula::Kind::Or, std::move(a), std::move(b));
}
CtlRef ctlImplies(CtlRef a, CtlRef b) {
  return ctlOr(ctlNot(std::move(a)), std::move(b));
}
CtlRef ctlEX(CtlRef a) { return mk1(CtlFormula::Kind::EX, std::move(a)); }
CtlRef ctlEG(CtlRef a) { return mk1(CtlFormula::Kind::EG, std::move(a)); }
CtlRef ctlEU(CtlRef a, CtlRef b) {
  return mk2(CtlFormula::Kind::EU, std::move(a), std::move(b));
}
CtlRef ctlEF(CtlRef a) { return mk1(CtlFormula::Kind::EF, std::move(a)); }
CtlRef ctlAX(CtlRef a) { return mk1(CtlFormula::Kind::AX, std::move(a)); }
CtlRef ctlAG(CtlRef a) { return mk1(CtlFormula::Kind::AG, std::move(a)); }
CtlRef ctlAF(CtlRef a) { return mk1(CtlFormula::Kind::AF, std::move(a)); }
CtlRef ctlAU(CtlRef a, CtlRef b) {
  return mk2(CtlFormula::Kind::AU, std::move(a), std::move(b));
}

std::string CtlFormula::toString() const {
  switch (kind) {
    case Kind::True: return "1";
    case Kind::False: return "0";
    case Kind::Atom: return atom->toString();
    case Kind::Not: return "!" + left->toString();
    case Kind::And: return "(" + left->toString() + " & " + right->toString() + ")";
    case Kind::Or: return "(" + left->toString() + " | " + right->toString() + ")";
    case Kind::EX: return "EX " + left->toString();
    case Kind::EG: return "EG " + left->toString();
    case Kind::EU: return "E[" + left->toString() + " U " + right->toString() + "]";
    case Kind::AX: return "AX " + left->toString();
    case Kind::AG: return "AG " + left->toString();
    case Kind::AF: return "AF " + left->toString();
    case Kind::AU: return "A[" + left->toString() + " U " + right->toString() + "]";
    case Kind::EF: return "EF " + left->toString();
  }
  return "?";
}

bool CtlFormula::isPropositional() const {
  switch (kind) {
    case Kind::True:
    case Kind::False:
    case Kind::Atom:
      return true;
    case Kind::Not:
      return left->isPropositional();
    case Kind::And:
    case Kind::Or:
      return left->isPropositional() && right->isPropositional();
    default:
      return false;
  }
}

bool CtlFormula::isInvariant() const {
  return kind == Kind::AG && left->isPropositional();
}

namespace {

class CtlParser {
 public:
  explicit CtlParser(const std::string& text) : text_(text) {}

  CtlRef parse() {
    CtlRef f = parseImp();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters");
    return f;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw std::runtime_error("CTL parse error in \"" + text_ + "\" at offset " +
                             std::to_string(pos_) + ": " + msg);
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  bool eatStr(const char* s) {
    skipWs();
    size_t len = std::string(s).size();
    if (text_.compare(pos_, len, s) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool eat(char c) {
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Next word without consuming.
  std::string peekWord() {
    skipWs();
    size_t p = pos_;
    std::string w;
    while (p < text_.size()) {
      char c = text_[p];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '.' || c == '$') {
        w.push_back(c);
        ++p;
      } else {
        break;
      }
    }
    return w;
  }

  CtlRef parseImp() {
    CtlRef lhs = parseOr();
    skipWs();
    if (eatStr("->")) return ctlImplies(std::move(lhs), parseImp());
    return lhs;
  }

  CtlRef parseOr() {
    CtlRef f = parseAnd();
    while (true) {
      skipWs();
      // '->' starts with neither '|' nor '&'; safe to eat single '|'
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '|') ++pos_;
        f = ctlOr(std::move(f), parseAnd());
      } else {
        return f;
      }
    }
  }

  CtlRef parseAnd() {
    CtlRef f = parseUnary();
    while (true) {
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == '&') {
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '&') ++pos_;
        f = ctlAnd(std::move(f), parseUnary());
      } else {
        return f;
      }
    }
  }

  CtlRef parseUnary() {
    skipWs();
    if (eat('!')) return ctlNot(parseUnary());
    if (eat('(')) {
      CtlRef f = parseImp();
      if (!eat(')')) fail("missing ')'");
      return f;
    }
    std::string w = peekWord();
    auto eatWord = [&] { pos_ += w.size(); };
    if (w == "AG") { eatWord(); return ctlAG(parseUnary()); }
    if (w == "AF") { eatWord(); return ctlAF(parseUnary()); }
    if (w == "AX") { eatWord(); return ctlAX(parseUnary()); }
    if (w == "EG") { eatWord(); return ctlEG(parseUnary()); }
    if (w == "EF") { eatWord(); return ctlEF(parseUnary()); }
    if (w == "EX") { eatWord(); return ctlEX(parseUnary()); }
    if (w == "A" || w == "E") {
      eatWord();
      if (!eat('[')) fail("expected '[' after path quantifier");
      CtlRef p = parseImp();
      skipWs();
      if (peekWord() != "U") fail("expected 'U'");
      pos_ += 1;
      CtlRef q = parseImp();
      if (!eat(']')) fail("expected ']'");
      return w == "A" ? ctlAU(std::move(p), std::move(q))
                      : ctlEU(std::move(p), std::move(q));
    }
    if (w == "1" || w == "TRUE" || w == "true") {
      eatWord();
      return ctlTrue();
    }
    if (w == "0" || w == "FALSE" || w == "false") {
      eatWord();
      return ctlFalse();
    }
    if (w.empty()) fail("expected formula");
    // Atom: consume "sig", optionally "=value" / "!=value".
    eatWord();
    skipWs();
    bool negated = false;
    bool hasValue = false;
    if (pos_ + 1 < text_.size() && text_[pos_] == '!' && text_[pos_ + 1] == '=') {
      pos_ += 2;
      negated = true;
      hasValue = true;
    } else if (pos_ < text_.size() && text_[pos_] == '=') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '=') ++pos_;
      hasValue = true;
    }
    if (!hasValue) return ctlAtom(sigAtom(w));
    std::string v = peekWord();
    if (v.empty()) fail("expected value after comparison");
    pos_ += v.size();
    return ctlAtom(sigAtom(w, v, negated));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

CtlRef parseCtl(const std::string& text) { return CtlParser(text).parse(); }

}  // namespace hsis
