// Computation Tree Logic: formulas and parser [Clarke-Emerson-Sistla].
//
// Grammar (SMV-flavoured):
//   formula := iff
//   iff     := imp ('<->' imp)*
//   imp     := or ('->' imp)?
//   or      := and ('|' and)*
//   and     := unary ('&' unary)*
//   unary   := '!' unary | 'AG' unary | 'AF' unary | 'AX' unary
//            | 'EG' unary | 'EF' unary | 'EX' unary
//            | 'A' '[' formula 'U' formula ']'
//            | 'E' '[' formula 'U' formula ']'
//            | '(' formula ')' | atom
// Atoms use the shared signal-expression syntax (sig, sig=value, sig!=value).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pif/sigexpr.hpp"

namespace hsis {

struct CtlFormula;
using CtlRef = std::shared_ptr<const CtlFormula>;

struct CtlFormula {
  enum class Kind : uint8_t {
    True, False, Atom, Not, And, Or,
    EX, EG, EU,   // the primitive temporal operators
    AX, AG, AF, AU, EF,  // rewritten to primitives by the checker
  };
  Kind kind = Kind::True;
  SigExprRef atom;  ///< for Atom
  CtlRef left, right;

  [[nodiscard]] std::string toString() const;
  /// Does the formula start with a universal path quantifier at top level
  /// after negation-pushing? (Used for early failure detection.)
  [[nodiscard]] bool isInvariant() const;  // of the form AG p, p propositional
  [[nodiscard]] bool isPropositional() const;
};

CtlRef ctlTrue();
CtlRef ctlFalse();
CtlRef ctlAtom(SigExprRef a);
CtlRef ctlNot(CtlRef a);
CtlRef ctlAnd(CtlRef a, CtlRef b);
CtlRef ctlOr(CtlRef a, CtlRef b);
CtlRef ctlImplies(CtlRef a, CtlRef b);
CtlRef ctlEX(CtlRef a);
CtlRef ctlEG(CtlRef a);
CtlRef ctlEU(CtlRef a, CtlRef b);
CtlRef ctlEF(CtlRef a);
CtlRef ctlAX(CtlRef a);
CtlRef ctlAG(CtlRef a);
CtlRef ctlAF(CtlRef a);
CtlRef ctlAU(CtlRef a, CtlRef b);

/// Parse a CTL formula; throws std::runtime_error on syntax errors.
CtlRef parseCtl(const std::string& text);

}  // namespace hsis
