// Fair CTL model checking [15] with Emerson-Lei fair-cycle computation [10],
// reachability don't-cares, and early failure detection for invariants
// (paper Section 5.4, technique 1).
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "ctl/ctl.hpp"
#include "fsm/image.hpp"
#include "fsm/trace.hpp"

namespace hsis {

struct McOptions {
  /// Intersect all computations with the reachable set and use it as a
  /// don't-care care-set (restrict-minimized transition relation).
  bool useReachedDontCares = true;
  /// Check invariants on reachability frontiers and stop at the first
  /// failing frontier (early failure detection).
  bool earlyFailureDetection = true;
  /// Generate a counterexample/witness trace when available.
  bool wantTrace = true;
  /// Record per-depth new-state counts during the reachability fixpoint
  /// (the hsis_cov frontier time series, ReachOptions::
  /// recordFrontierStates). The constructor downgrades this to false under
  /// HSIS_OBS_DISABLE or when HSIS_COV_DISABLE is set in the environment —
  /// the latter is the runtime A/B toggle the EXPERIMENTS.md overhead
  /// measurement flips.
  bool recordFrontierStates = true;
};

struct McStats {
  size_t preimageCalls = 0;
  size_t fixpointIterations = 0;
  size_t reachabilitySteps = 0;
  bool usedEarlyFailure = false;
  double seconds = 0.0;
};

struct McResult {
  bool holds = false;
  /// States satisfying the formula (over present-state vars); null when the
  /// check was resolved by early failure detection before the full fixpoint.
  Bdd satisfying;
  std::optional<Trace> counterexample;
  McStats stats;
};

/// The model checker. Fairness constraints are Büchi state sets: a path is
/// fair iff it visits every constraint set infinitely often. Path
/// quantifiers range over fair paths only.
class CtlChecker {
 public:
  CtlChecker(const Fsm& fsm, const TransitionRelation& tr,
             std::vector<Bdd> fairnessConstraints = {},
             McOptions options = {});

  /// Model-check the formula against all initial states.
  McResult check(const CtlRef& formula);

  /// The satisfying set of a formula (fair semantics, restricted to the
  /// reachable states when don't-cares are enabled).
  Bdd states(const CtlRef& formula);

  /// The set of fair states (states with some fair path).
  const Bdd& fairStates();

  [[nodiscard]] const Bdd& reached();
  /// Adopt an already-computed reachability result instead of running the
  /// fixpoint (the parallel batch scheduler computes it once on the primary
  /// checker and seeds every replica with the transferred copy). Leaves the
  /// checker in exactly the state a reached() call would: don't-care
  /// minimization included. Must be called before any check on this
  /// instance; throws std::logic_error once reachability exists.
  void seedReachability(Bdd reached, std::vector<Bdd> onionRings,
                        std::vector<double> frontierStates, size_t steps);
  /// Onion rings of the reachability fixpoint (empty unless wantTrace kept
  /// them). Exposed so a batch scheduler can replicate checker state.
  [[nodiscard]] const std::vector<Bdd>& onionRings() const {
    return onionRings_;
  }
  /// New-state count per reachability depth (frontierStates of the reach
  /// fixpoint). Empty before reached() ran, or when frontier recording is
  /// off (HSIS_OBS_DISABLE / HSIS_COV_DISABLE).
  [[nodiscard]] const std::vector<double>& frontierNewStates() const {
    return frontierStates_;
  }
  [[nodiscard]] const McStats& lastStats() const { return stats_; }
  [[nodiscard]] const Fsm& fsm() const { return *fsm_; }
  [[nodiscard]] const TransitionRelation& tr() const { return *tr_; }
  [[nodiscard]] const std::vector<Bdd>& fairnessConstraints() const {
    return fair_;
  }

  // ---- primitives (exposed for the debugger and tests) ----
  Bdd preimage(const Bdd& s);
  /// Least fixpoint E[p U q] (fairness handled by the caller).
  Bdd eu(const Bdd& p, const Bdd& q);
  /// Greatest fixpoint EG p under the fairness constraints (Emerson-Lei).
  Bdd egFair(const Bdd& p);

  /// Evaluate a propositional (non-temporal) formula to a BDD.
  Bdd evalPropositional(const CtlRef& f);

 private:
  Bdd statesRec(const CtlFormula& f);
  McResult checkInvariantEarly(const CtlRef& formula);

  const Fsm* fsm_;
  const TransitionRelation* tr_;
  std::vector<Bdd> fair_;
  McOptions opts_;

  std::optional<TransitionRelation> minimizedTr_;
  const TransitionRelation* activeTr_ = nullptr;
  Bdd reached_;
  std::vector<Bdd> onionRings_;
  std::vector<double> frontierStates_;
  Bdd fairStates_;
  bool fairStatesComputed_ = false;
  McStats stats_;
};

}  // namespace hsis
