// BLIF-MV: the Berkeley Logic Interchange Format extended with multi-valued
// variables and non-determinism [Brayton et al., UCB/ERL M91/97]. This is
// HSIS's intermediate format: every front end (here: vl2mv) compiles to it,
// and the verification engine consumes it.
//
// Supported subset (what vl2mv generates, plus hand-written models):
//   .model NAME
//   .inputs A B ...          .outputs X Y ...
//   .mv NAME[,NAME...] SIZE [VALUE-NAMES...]
//   .latch IN OUT
//   .reset OUT               followed by one row per alternative initial value
//   .table IN1 ... INk OUT   (.default VALUE) rows of k+1 entries
//   .subckt MODEL INST FORMAL=ACTUAL ...
//   .end
// Table row entries: VALUE | - | (v1,v2,...) | !VALUE | =NAME
// Multiple rows may match the same input point with different outputs: a
// table is a *relation*, which is how BLIF-MV expresses non-determinism.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hsis::blifmv {

/// One entry (column) of a table row.
struct RowEntry {
  enum class Kind : uint8_t {
    Any,         ///< '-' : the full domain
    Values,      ///< explicit value or (v1,v2,...) set
    Complement,  ///< !v : everything but v
    Equal,       ///< =name : equals the named input column (output column)
  };
  Kind kind = Kind::Any;
  std::vector<std::string> values;  ///< for Values/Complement (symbolic or numeral)
  std::string eqVar;                ///< for Equal

  static RowEntry any() { return RowEntry{}; }
  static RowEntry value(std::string v) {
    return RowEntry{Kind::Values, {std::move(v)}, {}};
  }
};

struct Row {
  std::vector<RowEntry> entries;  ///< one per table signal, output last
};

/// A (possibly non-deterministic) relation over its input signals and a
/// single output signal.
struct Table {
  std::vector<std::string> inputs;
  std::string output;
  std::optional<std::string> defaultValue;  ///< .default
  std::vector<Row> rows;
};

struct Latch {
  std::string input;                     ///< next-state signal
  std::string output;                    ///< present-state signal
  std::vector<std::string> resetValues;  ///< one or more initial values
};

/// .mv declaration; signals without one are binary with values {0,1}.
struct VarDecl {
  uint32_t domain = 2;
  std::vector<std::string> valueNames;  ///< optional symbolic names
};

struct Subckt {
  std::string modelName;
  std::string instanceName;
  /// formal (in the child model) -> actual (in this model)
  std::vector<std::pair<std::string, std::string>> connections;
};

struct Model {
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::unordered_map<std::string, VarDecl> varDecls;
  std::vector<Table> tables;
  std::vector<Latch> latches;
  std::vector<Subckt> subckts;
  /// Source-level debugging annotations (".lineinfo SIGNAL LINE", an HSIS
  /// extension — paper Section 8, item 7): the HDL source line a signal
  /// was declared on. Optional; propagated through flattening.
  std::unordered_map<std::string, int> lineInfo;

  /// Domain of a signal (2 unless declared by .mv).
  [[nodiscard]] const VarDecl* declOf(const std::string& sig) const;
  /// Source line of a signal, or 0 if unknown.
  [[nodiscard]] int lineOf(const std::string& sig) const;
};

struct Design {
  std::vector<Model> models;
  std::string rootName;  ///< first model unless overridden

  [[nodiscard]] const Model* findModel(const std::string& name) const;
  [[nodiscard]] const Model& root() const;
};

/// Parse error with 1-based line information.
struct ParseError {
  std::string message;
  int line = 0;
};

class ParseException : public std::exception {
 public:
  explicit ParseException(ParseError e);
  [[nodiscard]] const char* what() const noexcept override { return text_.c_str(); }
  [[nodiscard]] const ParseError& error() const { return err_; }

 private:
  ParseError err_;
  std::string text_;
};

/// Parse BLIF-MV text. Throws ParseException on malformed input.
Design parse(const std::string& text);

/// Serialize back to BLIF-MV text (round-trips through parse()).
std::string write(const Design& design);
std::string write(const Model& model);

/// Count the non-blank, non-comment lines write(design) would produce —
/// the "# lines BLIF-MV" statistic of the paper's Table 1.
size_t lineCount(const Design& design);

/// Flatten the hierarchy into a single model containing only tables and
/// latches. Signals of instantiated models are prefixed "inst.sig"; formal
/// ports are rewired to their actuals. Throws std::runtime_error on
/// missing models, port mismatches, or instantiation cycles.
Model flatten(const Design& design);

}  // namespace hsis::blifmv
