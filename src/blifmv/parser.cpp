// Line-oriented BLIF-MV parser.
#include "blifmv/blifmv.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace hsis::blifmv {

ParseException::ParseException(ParseError e)
    : err_(std::move(e)),
      text_("blifmv parse error (line " + std::to_string(err_.line) +
            "): " + err_.message) {}

const VarDecl* Model::declOf(const std::string& sig) const {
  auto it = varDecls.find(sig);
  return it == varDecls.end() ? nullptr : &it->second;
}

int Model::lineOf(const std::string& sig) const {
  auto it = lineInfo.find(sig);
  return it == lineInfo.end() ? 0 : it->second;
}

const Model* Design::findModel(const std::string& name) const {
  for (const Model& m : models)
    if (m.name == name) return &m;
  return nullptr;
}

const Model& Design::root() const {
  const Model* m = findModel(rootName);
  if (m == nullptr) throw std::runtime_error("blifmv: no root model " + rootName);
  return *m;
}

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseException(ParseError{msg, line});
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  // Parenthesized value sets are one token even if they contain commas;
  // whitespace inside parens is not expected from our writers but tolerated.
  int depth = 0;
  for (char c : line) {
    if (depth == 0 && std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
      continue;
    }
    if (c == '(') ++depth;
    if (c == ')') --depth;
    cur.push_back(c);
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

std::vector<std::string> splitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

RowEntry parseEntry(const std::string& tok, int line) {
  if (tok == "-") return RowEntry{RowEntry::Kind::Any, {}, {}};
  if (tok.size() >= 2 && tok.front() == '=') {
    return RowEntry{RowEntry::Kind::Equal, {}, tok.substr(1)};
  }
  if (tok.size() >= 2 && tok.front() == '!') {
    return RowEntry{RowEntry::Kind::Complement, {tok.substr(1)}, {}};
  }
  if (tok.size() >= 2 && tok.front() == '(' && tok.back() == ')') {
    auto vals = splitCommas(tok.substr(1, tok.size() - 2));
    if (vals.empty()) fail(line, "empty value set " + tok);
    return RowEntry{RowEntry::Kind::Values, std::move(vals), {}};
  }
  return RowEntry{RowEntry::Kind::Values, {tok}, {}};
}

}  // namespace

Design parse(const std::string& text) {
  Design design;
  Model* model = nullptr;       // current model
  Table* table = nullptr;       // current .table collecting rows
  Latch* resetLatch = nullptr;  // current .reset collecting rows

  std::istringstream in(text);
  std::string raw;
  int lineNo = 0;
  std::string pending;  // handles trailing-backslash continuations

  auto finishDirectiveContext = [&] {
    table = nullptr;
    resetLatch = nullptr;
  };

  while (std::getline(in, raw)) {
    ++lineNo;
    // Strip comments.
    size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    // Continuation.
    if (!raw.empty() && raw.back() == '\\') {
      pending += raw.substr(0, raw.size() - 1) + " ";
      continue;
    }
    std::string line = pending + raw;
    pending.clear();

    std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;

    const std::string& head = toks[0];
    if (head[0] == '.') {
      if (head == ".model") {
        if (toks.size() != 2) fail(lineNo, ".model needs a name");
        design.models.emplace_back();
        model = &design.models.back();
        model->name = toks[1];
        if (design.rootName.empty()) design.rootName = model->name;
        finishDirectiveContext();
        continue;
      }
      if (model == nullptr) fail(lineNo, head + " before .model");
      if (head == ".inputs") {
        model->inputs.insert(model->inputs.end(), toks.begin() + 1, toks.end());
        finishDirectiveContext();
      } else if (head == ".outputs") {
        model->outputs.insert(model->outputs.end(), toks.begin() + 1, toks.end());
        finishDirectiveContext();
      } else if (head == ".mv") {
        if (toks.size() < 3) fail(lineNo, ".mv needs names and a size");
        std::vector<std::string> names = splitCommas(toks[1]);
        // Allow ".mv a, b 4": merge tokens until one parses as a number.
        size_t k = 2;
        while (k < toks.size() &&
               toks[k].find_first_not_of("0123456789") != std::string::npos) {
          auto more = splitCommas(toks[k]);
          names.insert(names.end(), more.begin(), more.end());
          ++k;
        }
        if (k >= toks.size()) fail(lineNo, ".mv missing domain size");
        unsigned long size = std::stoul(toks[k]);
        if (size < 1) fail(lineNo, ".mv domain must be >= 1");
        VarDecl decl;
        decl.domain = static_cast<uint32_t>(size);
        decl.valueNames.assign(toks.begin() + static_cast<long>(k) + 1, toks.end());
        if (!decl.valueNames.empty() && decl.valueNames.size() != decl.domain)
          fail(lineNo, ".mv value-name count mismatch");
        for (const std::string& n : names) model->varDecls[n] = decl;
        finishDirectiveContext();
      } else if (head == ".latch") {
        if (toks.size() != 3) fail(lineNo, ".latch needs input and output");
        model->latches.push_back(Latch{toks[1], toks[2], {}});
        finishDirectiveContext();
      } else if (head == ".reset") {
        if (toks.size() != 2) fail(lineNo, ".reset needs a latch output");
        resetLatch = nullptr;
        for (Latch& l : model->latches) {
          if (l.output == toks[1]) resetLatch = &l;
        }
        if (resetLatch == nullptr)
          fail(lineNo, ".reset for unknown latch " + toks[1]);
        table = nullptr;
      } else if (head == ".table" || head == ".names") {
        if (toks.size() < 2) fail(lineNo, ".table needs at least an output");
        model->tables.emplace_back();
        table = &model->tables.back();
        table->inputs.assign(toks.begin() + 1, toks.end() - 1);
        table->output = toks.back();
        resetLatch = nullptr;
      } else if (head == ".default") {
        if (table == nullptr) fail(lineNo, ".default outside a table");
        if (toks.size() != 2) fail(lineNo, ".default needs one value");
        table->defaultValue = toks[1];
      } else if (head == ".lineinfo") {
        if (toks.size() != 3) fail(lineNo, ".lineinfo needs signal and line");
        model->lineInfo[toks[1]] = std::stoi(toks[2]);
        finishDirectiveContext();
      } else if (head == ".subckt") {
        if (toks.size() < 3) fail(lineNo, ".subckt needs model and instance");
        Subckt sc;
        sc.modelName = toks[1];
        sc.instanceName = toks[2];
        for (size_t i = 3; i < toks.size(); ++i) {
          size_t eq = toks[i].find('=');
          if (eq == std::string::npos)
            fail(lineNo, ".subckt connection must be formal=actual: " + toks[i]);
          sc.connections.emplace_back(toks[i].substr(0, eq), toks[i].substr(eq + 1));
        }
        model->subckts.push_back(std::move(sc));
        finishDirectiveContext();
      } else if (head == ".end") {
        model = nullptr;
        finishDirectiveContext();
      } else {
        fail(lineNo, "unknown directive " + head);
      }
      continue;
    }

    // Data row: belongs to the open .table or .reset.
    if (resetLatch != nullptr) {
      if (toks.size() != 1) fail(lineNo, ".reset rows have one value");
      // A parenthesized set "(v1,v2)" contributes several initial values.
      const std::string& tok = toks[0];
      if (tok.size() >= 2 && tok.front() == '(' && tok.back() == ')') {
        for (std::string& v : splitCommas(tok.substr(1, tok.size() - 2)))
          resetLatch->resetValues.push_back(std::move(v));
      } else {
        resetLatch->resetValues.push_back(tok);
      }
      continue;
    }
    if (table != nullptr) {
      Row row;
      for (const std::string& t : toks) row.entries.push_back(parseEntry(t, lineNo));
      if (row.entries.size() != table->inputs.size() + 1)
        fail(lineNo, "row width " + std::to_string(row.entries.size()) +
                         " does not match table arity " +
                         std::to_string(table->inputs.size() + 1));
      table->rows.push_back(std::move(row));
      continue;
    }
    fail(lineNo, "data row outside .table/.reset: " + line);
  }
  if (!pending.empty()) fail(lineNo, "dangling line continuation");
  if (design.models.empty()) fail(lineNo, "no .model found");
  return design;
}

}  // namespace hsis::blifmv
