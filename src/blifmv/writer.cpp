// BLIF-MV serialization (round-trips through the parser).
#include "blifmv/blifmv.hpp"

#include <algorithm>
#include <sstream>

namespace hsis::blifmv {

namespace {

std::string entryText(const RowEntry& e) {
  switch (e.kind) {
    case RowEntry::Kind::Any:
      return "-";
    case RowEntry::Kind::Equal:
      return "=" + e.eqVar;
    case RowEntry::Kind::Complement:
      return "!" + e.values.at(0);
    case RowEntry::Kind::Values: {
      if (e.values.size() == 1) return e.values[0];
      std::string s = "(";
      for (size_t i = 0; i < e.values.size(); ++i) {
        if (i != 0) s += ",";
        s += e.values[i];
      }
      return s + ")";
    }
  }
  return "-";
}

void writeModel(std::ostream& os, const Model& m) {
  os << ".model " << m.name << "\n";
  if (!m.inputs.empty()) {
    os << ".inputs";
    for (const auto& s : m.inputs) os << " " << s;
    os << "\n";
  }
  if (!m.outputs.empty()) {
    os << ".outputs";
    for (const auto& s : m.outputs) os << " " << s;
    os << "\n";
  }
  // Sort declarations so output is deterministic (varDecls is unordered).
  std::vector<const std::pair<const std::string, VarDecl>*> decls;
  for (const auto& entry : m.varDecls) decls.push_back(&entry);
  std::sort(decls.begin(), decls.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : decls) {
    const auto& [name, decl] = *entry;
    if (decl.domain == 2 && decl.valueNames.empty()) continue;
    os << ".mv " << name << " " << decl.domain;
    for (const auto& v : decl.valueNames) os << " " << v;
    os << "\n";
  }
  {
    std::vector<const std::pair<const std::string, int>*> lines;
    for (const auto& entry : m.lineInfo) lines.push_back(&entry);
    std::sort(lines.begin(), lines.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    for (const auto* entry : lines)
      os << ".lineinfo " << entry->first << " " << entry->second << "\n";
  }
  for (const Subckt& sc : m.subckts) {
    os << ".subckt " << sc.modelName << " " << sc.instanceName;
    for (const auto& [f, a] : sc.connections) os << " " << f << "=" << a;
    os << "\n";
  }
  for (const Latch& l : m.latches) {
    os << ".latch " << l.input << " " << l.output << "\n";
    if (!l.resetValues.empty()) {
      os << ".reset " << l.output << "\n";
      for (const auto& v : l.resetValues) os << v << "\n";
    }
  }
  for (const Table& t : m.tables) {
    os << ".table";
    for (const auto& s : t.inputs) os << " " << s;
    os << " " << t.output << "\n";
    if (t.defaultValue.has_value()) os << ".default " << *t.defaultValue << "\n";
    for (const Row& r : t.rows) {
      for (size_t i = 0; i < r.entries.size(); ++i) {
        if (i != 0) os << " ";
        os << entryText(r.entries[i]);
      }
      os << "\n";
    }
  }
  os << ".end\n";
}

}  // namespace

std::string write(const Model& model) {
  std::ostringstream os;
  writeModel(os, model);
  return os.str();
}

std::string write(const Design& design) {
  std::ostringstream os;
  // Root model first, as the parser takes the first model as root.
  if (const Model* root = design.findModel(design.rootName)) writeModel(os, *root);
  for (const Model& m : design.models) {
    if (m.name != design.rootName) writeModel(os, m);
  }
  return os.str();
}

size_t lineCount(const Design& design) {
  std::string text = write(design);
  size_t n = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t") != std::string::npos) ++n;
  }
  return n;
}

}  // namespace hsis::blifmv
