// Hierarchy flattening: expand .subckt instantiations into one flat model.
#include "blifmv/blifmv.hpp"

#include <stdexcept>
#include <unordered_set>

namespace hsis::blifmv {

namespace {

class Flattener {
 public:
  explicit Flattener(const Design& design) : design_(design) {}

  Model run() {
    const Model& root = design_.root();
    out_.name = root.name;
    out_.inputs = root.inputs;
    out_.outputs = root.outputs;
    std::unordered_map<std::string, std::string> identity;
    instantiate(root, "", identity);
    return std::move(out_);
  }

 private:
  void declare(const std::string& flatName, const VarDecl& decl) {
    auto [it, inserted] = out_.varDecls.emplace(flatName, decl);
    if (inserted) return;
    if (it->second.domain != decl.domain) {
      throw std::runtime_error("blifmv flatten: domain mismatch on net " +
                               flatName + " (" + std::to_string(it->second.domain) +
                               " vs " + std::to_string(decl.domain) + ")");
    }
    // Two sides of a connection may declare the same net; keep symbolic
    // value names if either side has them (tables refer to them by name).
    if (it->second.valueNames.empty() && !decl.valueNames.empty()) {
      it->second.valueNames = decl.valueNames;
    }
  }

  void instantiate(const Model& m, const std::string& prefix,
                   const std::unordered_map<std::string, std::string>& portMap) {
    if (!stack_.insert(m.name).second) {
      throw std::runtime_error("blifmv flatten: recursive instantiation of " +
                               m.name);
    }
    auto rename = [&](const std::string& sig) -> std::string {
      auto it = portMap.find(sig);
      if (it != portMap.end()) return it->second;
      return prefix + sig;
    };

    for (const auto& [sig, decl] : m.varDecls) declare(rename(sig), decl);
    for (const auto& [sig, line] : m.lineInfo) out_.lineInfo[rename(sig)] = line;

    for (const Table& t : m.tables) {
      Table ft;
      ft.output = rename(t.output);
      ft.defaultValue = t.defaultValue;
      for (const auto& in : t.inputs) ft.inputs.push_back(rename(in));
      for (const Row& r : t.rows) {
        Row fr = r;
        for (RowEntry& e : fr.entries) {
          if (e.kind == RowEntry::Kind::Equal) e.eqVar = rename(e.eqVar);
        }
        ft.rows.push_back(std::move(fr));
      }
      out_.tables.push_back(std::move(ft));
    }

    for (const Latch& l : m.latches) {
      out_.latches.push_back(Latch{rename(l.input), rename(l.output), l.resetValues});
    }

    for (const Subckt& sc : m.subckts) {
      const Model* child = design_.findModel(sc.modelName);
      if (child == nullptr) {
        throw std::runtime_error("blifmv flatten: unknown model " + sc.modelName);
      }
      std::unordered_map<std::string, std::string> childMap;
      std::unordered_set<std::string> formals(
          // all ports of the child are legal formals
          child->inputs.begin(), child->inputs.end());
      formals.insert(child->outputs.begin(), child->outputs.end());
      for (const auto& [formal, actual] : sc.connections) {
        if (!formals.contains(formal)) {
          throw std::runtime_error("blifmv flatten: " + sc.modelName +
                                   " has no port " + formal);
        }
        childMap[formal] = rename(actual);
      }
      // Unconnected child inputs would dangle (free inputs of the flat
      // model) — reject them; unconnected outputs become internal nets.
      for (const std::string& in : child->inputs) {
        if (!childMap.contains(in)) {
          throw std::runtime_error("blifmv flatten: input " + in + " of " +
                                   sc.modelName + " left unconnected in " +
                                   m.name);
        }
      }
      instantiate(*child, prefix + sc.instanceName + ".", childMap);
    }
    stack_.erase(m.name);
  }

  const Design& design_;
  Model out_;
  std::unordered_set<std::string> stack_;
};

}  // namespace

Model flatten(const Design& design) { return Flattener(design).run(); }

}  // namespace hsis::blifmv
