// Multi-valued variables and functions over BDDs (the "MDD layer").
//
// BLIF-MV variables range over finite domains with symbolic value names; the
// verification engine encodes each such variable onto ceil(log2(domain))
// binary BDD variables. MvSpace owns the mapping; Mvf is a multi-valued
// function/relation image represented as one BDD per value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"

namespace hsis {

using MvVarId = uint32_t;

/// Registry of multi-valued variables and their binary encodings.
class MvSpace {
 public:
  explicit MvSpace(BddManager& mgr) : mgr_(&mgr) {}

  /// Register a multi-valued variable of the given domain size. If `bits` is
  /// provided it must contain exactly bitsFor(domain) fresh BDD variables;
  /// otherwise bits are allocated at the bottom of the order.
  MvVarId addVar(std::string name, uint32_t domain,
                 std::vector<std::string> valueNames = {},
                 std::optional<std::vector<BddVar>> bits = std::nullopt);

  static uint32_t bitsFor(uint32_t domain);

  [[nodiscard]] uint32_t numVars() const { return static_cast<uint32_t>(vars_.size()); }
  [[nodiscard]] const std::string& name(MvVarId v) const { return vars_[v].name; }
  [[nodiscard]] uint32_t domain(MvVarId v) const { return vars_[v].domain; }
  [[nodiscard]] const std::vector<BddVar>& bits(MvVarId v) const { return vars_[v].bits; }
  [[nodiscard]] const std::vector<std::string>& valueNames(MvVarId v) const {
    return vars_[v].valueNames;
  }
  /// Printable name for a value (symbolic if available, else the number).
  [[nodiscard]] std::string valueName(MvVarId v, uint32_t value) const;
  /// Inverse of valueName; also accepts decimal numerals.
  [[nodiscard]] std::optional<uint32_t> valueOf(MvVarId v, const std::string& s) const;
  [[nodiscard]] std::optional<MvVarId> findVar(const std::string& name) const;

  /// BDD of "v == value".
  Bdd literal(MvVarId v, uint32_t value) const;
  /// BDD of "v ∈ values".
  Bdd literalSet(MvVarId v, const std::vector<uint32_t>& values) const;
  /// Conjunction cube of the variable's encoding bits (for quantification).
  Bdd cube(MvVarId v) const;
  Bdd cube(const std::vector<MvVarId>& vs) const;
  /// BDD of all bit patterns that encode a valid value (< domain).
  Bdd validEncodings(MvVarId v) const;

  /// Read the value of v out of a (complete enough) assignment as produced
  /// by BddManager::pickCube. Don't-care bits read as 0.
  uint32_t decode(MvVarId v, const std::vector<int8_t>& assignment) const;
  /// Total number of encoding bits across the listed variables.
  uint32_t totalBits(const std::vector<MvVarId>& vs) const;

  [[nodiscard]] BddManager& mgr() const { return *mgr_; }

  /// Point this space at a different manager. Sound only when the target
  /// manager has an identical binary-variable layout (same ids for the same
  /// roles), which is exactly what BddTransfer guarantees — the space holds
  /// no BDDs itself, only variable ids.
  void rebindManager(BddManager& mgr) { mgr_ = &mgr; }

 private:
  struct Info {
    std::string name;
    uint32_t domain;
    std::vector<std::string> valueNames;
    std::vector<BddVar> bits;  ///< LSB first
  };

  BddManager* mgr_;
  std::vector<Info> vars_;
  std::unordered_map<std::string, MvVarId> byName_;
};

/// A multi-valued function (or nondeterministic relation image): parts[k] is
/// the BDD of input assignments under which the function may take value k.
/// Deterministic and complete iff the parts partition the input space.
class Mvf {
 public:
  Mvf() = default;
  explicit Mvf(std::vector<Bdd> parts) : parts_(std::move(parts)) {}

  static Mvf constant(BddManager& mgr, uint32_t domain, uint32_t value);
  /// The identity function of a variable: parts[k] = (v == k).
  static Mvf varFunction(const MvSpace& space, MvVarId v);

  [[nodiscard]] uint32_t domain() const { return static_cast<uint32_t>(parts_.size()); }
  [[nodiscard]] const Bdd& part(uint32_t k) const { return parts_[k]; }
  [[nodiscard]] Bdd& part(uint32_t k) { return parts_[k]; }
  [[nodiscard]] const std::vector<Bdd>& parts() const { return parts_; }

  /// BDD of assignments where this function and `o` may take equal values.
  Bdd mayEqual(const Mvf& o) const;
  /// BDD of assignments on which the function is defined (union of parts).
  Bdd definedSet() const;
  /// BDD of assignments with more than one possible value.
  Bdd nondetSet() const;
  /// Is this a (deterministic, complete) function on the given care set?
  bool isDeterministic(const Bdd& careSet) const;

  /// Relation R(inputs, v): OR_k parts[k] & (v == k).
  Bdd toRelation(const MvSpace& space, MvVarId v) const;

 private:
  std::vector<Bdd> parts_;
};

}  // namespace hsis
