#include "mvf/mvf.hpp"

#include <cassert>
#include <stdexcept>

namespace hsis {

uint32_t MvSpace::bitsFor(uint32_t domain) {
  assert(domain >= 1);
  uint32_t bits = 0;
  while ((1u << bits) < domain) ++bits;
  return bits == 0 ? 1 : bits;  // domain 1..2 still gets one bit
}

MvVarId MvSpace::addVar(std::string name, uint32_t domain,
                        std::vector<std::string> valueNames,
                        std::optional<std::vector<BddVar>> bits) {
  if (domain == 0) throw std::invalid_argument("MvSpace: empty domain for " + name);
  uint32_t nbits = bitsFor(domain);
  std::vector<BddVar> bv;
  if (bits.has_value()) {
    if (bits->size() != nbits)
      throw std::invalid_argument("MvSpace: wrong bit count for " + name);
    bv = std::move(*bits);
  } else {
    bv.reserve(nbits);
    for (uint32_t i = 0; i < nbits; ++i) bv.push_back(mgr_->newVar());
  }
  MvVarId id = static_cast<MvVarId>(vars_.size());
  if (!valueNames.empty() && valueNames.size() != domain)
    throw std::invalid_argument("MvSpace: value-name count mismatch for " + name);
  vars_.push_back(Info{name, domain, std::move(valueNames), std::move(bv)});
  byName_.emplace(vars_.back().name, id);
  return id;
}

std::string MvSpace::valueName(MvVarId v, uint32_t value) const {
  const Info& info = vars_[v];
  if (value < info.valueNames.size()) return info.valueNames[value];
  return std::to_string(value);
}

std::optional<uint32_t> MvSpace::valueOf(MvVarId v, const std::string& s) const {
  const Info& info = vars_[v];
  for (uint32_t k = 0; k < info.valueNames.size(); ++k) {
    if (info.valueNames[k] == s) return k;
  }
  // Fall back to numerals.
  if (!s.empty() && s.find_first_not_of("0123456789") == std::string::npos) {
    unsigned long val = std::stoul(s);
    if (val < info.domain) return static_cast<uint32_t>(val);
  }
  return std::nullopt;
}

std::optional<MvVarId> MvSpace::findVar(const std::string& name) const {
  auto it = byName_.find(name);
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

Bdd MvSpace::literal(MvVarId v, uint32_t value) const {
  const Info& info = vars_[v];
  if (value >= info.domain)
    throw std::out_of_range("MvSpace::literal: value out of domain of " + info.name);
  Bdd r = mgr_->bddOne();
  // Deepest bits first keeps each conjunction step O(1)-ish; correctness
  // does not depend on it.
  for (size_t i = info.bits.size(); i-- > 0;) {
    r &= mgr_->bddLiteral(info.bits[i], (value >> i) & 1u);
  }
  return r;
}

Bdd MvSpace::literalSet(MvVarId v, const std::vector<uint32_t>& values) const {
  Bdd r = mgr_->bddZero();
  for (uint32_t k : values) r |= literal(v, k);
  return r;
}

Bdd MvSpace::cube(MvVarId v) const {
  Bdd r = mgr_->bddOne();
  const Info& info = vars_[v];
  for (size_t i = info.bits.size(); i-- > 0;) r &= mgr_->bddVar(info.bits[i]);
  return r;
}

Bdd MvSpace::cube(const std::vector<MvVarId>& vs) const {
  Bdd r = mgr_->bddOne();
  for (MvVarId v : vs) r &= cube(v);
  return r;
}

Bdd MvSpace::validEncodings(MvVarId v) const {
  const Info& info = vars_[v];
  if ((1u << info.bits.size()) == info.domain) return mgr_->bddOne();
  Bdd r = mgr_->bddZero();
  for (uint32_t k = 0; k < info.domain; ++k) r |= literal(v, k);
  return r;
}

uint32_t MvSpace::decode(MvVarId v, const std::vector<int8_t>& assignment) const {
  const Info& info = vars_[v];
  uint32_t val = 0;
  for (size_t i = 0; i < info.bits.size(); ++i) {
    BddVar b = info.bits[i];
    if (b < assignment.size() && assignment[b] == 1) val |= 1u << i;
  }
  return val < info.domain ? val : 0;
}

uint32_t MvSpace::totalBits(const std::vector<MvVarId>& vs) const {
  uint32_t n = 0;
  for (MvVarId v : vs) n += static_cast<uint32_t>(vars_[v].bits.size());
  return n;
}

// ------------------------------------------------------------------- Mvf

Mvf Mvf::constant(BddManager& mgr, uint32_t domain, uint32_t value) {
  std::vector<Bdd> parts(domain, mgr.bddZero());
  parts.at(value) = mgr.bddOne();
  return Mvf(std::move(parts));
}

Mvf Mvf::varFunction(const MvSpace& space, MvVarId v) {
  std::vector<Bdd> parts;
  parts.reserve(space.domain(v));
  for (uint32_t k = 0; k < space.domain(v); ++k)
    parts.push_back(space.literal(v, k));
  return Mvf(std::move(parts));
}

Bdd Mvf::mayEqual(const Mvf& o) const {
  assert(domain() == o.domain() && domain() > 0);
  BddManager& mgr = *parts_[0].manager();
  Bdd r = mgr.bddZero();
  for (uint32_t k = 0; k < domain(); ++k) r |= parts_[k] & o.parts_[k];
  return r;
}

Bdd Mvf::definedSet() const {
  assert(domain() > 0);
  BddManager& mgr = *parts_[0].manager();
  Bdd r = mgr.bddZero();
  for (const Bdd& p : parts_) r |= p;
  return r;
}

Bdd Mvf::nondetSet() const {
  assert(domain() > 0);
  BddManager& mgr = *parts_[0].manager();
  Bdd seen = mgr.bddZero();
  Bdd multi = mgr.bddZero();
  for (const Bdd& p : parts_) {
    multi |= seen & p;
    seen |= p;
  }
  return multi;
}

bool Mvf::isDeterministic(const Bdd& careSet) const {
  return (nondetSet() & careSet).isZero();
}

Bdd Mvf::toRelation(const MvSpace& space, MvVarId v) const {
  assert(domain() == space.domain(v));
  BddManager& mgr = space.mgr();
  Bdd r = mgr.bddZero();
  for (uint32_t k = 0; k < domain(); ++k) {
    if (!parts_[k].isZero()) r |= parts_[k] & space.literal(v, k);
  }
  return r;
}

}  // namespace hsis
