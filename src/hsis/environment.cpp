#include "hsis/environment.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/log.hpp"
#include "vl2mv/vl2mv.hpp"

namespace hsis {

namespace {

/// Seconds -> whole microseconds, the resolution Metrics and the registry
/// share so the two stay exactly equal.
uint64_t toMicros(double seconds) {
  return seconds <= 0 ? 0 : static_cast<uint64_t>(std::llround(seconds * 1e6));
}

int64_t clampToGauge(double v) {
  constexpr double kMax = 9.2e18;
  if (v >= kMax) return static_cast<int64_t>(kMax);
  if (v <= 0) return 0;
  return static_cast<int64_t>(v);
}

}  // namespace

Environment::Environment() : Environment(Options{}) {}
Environment::Environment(Options options) : opts_(options) {}
Environment::~Environment() = default;

void Environment::readVerilog(const std::string& text, const std::string& top) {
  verilogText_ = text;
  design_ = vl2mv::compile(text, top);
  metrics_.linesVerilog = vl2mv::verilogLineCount(text);
  metrics_.linesBlifMv = blifmv::lineCount(design_);
  HSIS_LOG_INFO("vl2mv.compile", "verilog compiled to BLIF-MV",
                {{"top", std::string_view(top.empty() ? "(auto)" : top)},
                 {"lines_verilog", metrics_.linesVerilog},
                 {"lines_blifmv", metrics_.linesBlifMv}});
  fsm_.reset();
  tr_.reset();
  checker_.reset();
}

void Environment::readBlifMv(const std::string& text) {
  verilogText_.clear();
  design_ = blifmv::parse(text);
  metrics_.linesVerilog = 0;
  metrics_.linesBlifMv = blifmv::lineCount(design_);
  HSIS_LOG_INFO("blifmv.parse", "BLIF-MV design parsed",
                {{"models", design_.models.size()},
                 {"lines_blifmv", metrics_.linesBlifMv}});
  fsm_.reset();
  tr_.reset();
  checker_.reset();
}

void Environment::readPif(const std::string& text) {
  PifFile file = parsePif(text);
  for (PifProperty& p : file.properties) properties_.push_back(std::move(p));
  addFairness(file.fairness);
}

void Environment::addProperty(PifProperty property) {
  properties_.push_back(std::move(property));
}

void Environment::addFairness(const FairnessSpec& fairness) {
  fairness_.noStay.insert(fairness_.noStay.end(), fairness.noStay.begin(),
                          fairness.noStay.end());
  fairness_.buchi.insert(fairness_.buchi.end(), fairness.buchi.begin(),
                         fairness.buchi.end());
  fairness_.fairEdges.insert(fairness_.fairEdges.end(),
                             fairness.fairEdges.begin(),
                             fairness.fairEdges.end());
  checker_.reset();  // fairness affects the CTL semantics
}

void Environment::build() {
  if (design_.models.empty())
    throw std::runtime_error("hsis: no design loaded");
  obs::Span span("env.build");
  obs::WallTimer timer;
  flat_ = blifmv::flatten(design_);
  mgr_ = std::make_unique<BddManager>();
  fsm_ = std::make_unique<Fsm>(*mgr_, flat_);
  for (const std::string& d : fsm_->diagnostics()) {
    // Elaboration diagnostics double as warn-level log events so they land
    // in the ring (and a crash dump) even when nobody reads notes().
    HSIS_LOG_WARN("env.elaborate", "elaboration diagnostic",
                  {{"note", std::string_view(d)}});
    notes_.push_back(d);
  }
  if (opts_.partitionedTr) {
    tr_ = TransitionRelation::partitioned(*fsm_, opts_.clusterLimit);
  } else {
    tr_ = TransitionRelation::monolithic(*fsm_, opts_.quantMethod);
  }
  // Metrics and the registry both read the same microsecond tick so the
  // derived Metrics view matches the exported snapshot exactly.
  uint64_t us = toMicros(timer.seconds());
  obs::gauge("env.read.micros").set(static_cast<int64_t>(us));
  metrics_.readSeconds = static_cast<double>(us) * 1e-6;
}

const Fsm& Environment::fsm() {
  if (fsm_ == nullptr) build();
  return *fsm_;
}

const TransitionRelation& Environment::tr() {
  if (fsm_ == nullptr) build();
  return *tr_;
}

std::vector<Bdd> Environment::ctlFairnessSets() {
  std::vector<Bdd> sets;
  for (const SigExprRef& e : fairness_.noStay)
    sets.push_back(!evalSigExpr(e, *fsm_));
  for (const SigExprRef& e : fairness_.buchi)
    sets.push_back(evalSigExpr(e, *fsm_));
  for (const auto& [from, to] : fairness_.fairEdges) {
    // Fair CTL takes Büchi constraints; a fair edge is approximated by its
    // target states (exact when every entry into `to` uses such an edge).
    (void)from;
    sets.push_back(evalSigExpr(to, *fsm_));
    if (notes_.empty() ||
        notes_.back().find("fair-edge") == std::string::npos) {
      notes_.push_back(
          "fair-edge constraint approximated by its target states for CTL "
          "model checking (exact in language containment)");
    }
  }
  return sets;
}

CtlChecker& Environment::checker() {
  if (fsm_ == nullptr) build();
  if (checker_ == nullptr) {
    McOptions mo;
    mo.earlyFailureDetection = opts_.earlyFailureDetection;
    mo.useReachedDontCares = opts_.useReachedDontCares;
    mo.wantTrace = opts_.wantTraces;
    checker_ =
        std::make_unique<CtlChecker>(*fsm_, *tr_, ctlFairnessSets(), mo);
  }
  return *checker_;
}

Simulator Environment::makeSimulator(uint64_t seed) {
  if (fsm_ == nullptr) build();
  return Simulator(*fsm_, *tr_, seed);
}

double Environment::reachedStates() {
  CtlChecker& mc = checker();
  Bdd reached = mc.reached();
  metrics_.reachedStates = fsm_->countStates(reached);
  obs::gauge("env.reached.states").set(clampToGauge(metrics_.reachedStates));
  return metrics_.reachedStates;
}

std::string Environment::statsJson() const { return obs::snapshotJson(); }

BugReport Environment::verifyCtl(const std::string& name, const CtlRef& formula) {
  BugReport report;
  report.paradigm = BugReport::Paradigm::ModelChecking;
  report.propertyName = name;
  report.propertyText = formula->toString();
  obs::Span span("env.verify.ctl");
  McResult r = checker().check(formula);
  report.holds = r.holds;
  report.trace = r.counterexample;
  report.seconds = r.stats.seconds;
  report.usedEarlyFailure = r.stats.usedEarlyFailure;
  uint64_t us = toMicros(r.stats.seconds);
  obs::counter("env.mc.micros").add(us);
  obs::counter("env.props.ctl").add();
  metrics_.mcSeconds += static_cast<double>(us) * 1e-6;
  ++metrics_.numCtlFormulas;
  return report;
}

BugReport Environment::verifyAutomaton(const std::string& name,
                                       const Automaton& aut) {
  if (fsm_ == nullptr) build();
  BugReport report;
  report.paradigm = BugReport::Paradigm::LanguageContainment;
  report.propertyName = name;
  report.propertyText = "automaton " + aut.name() + " (" +
                        std::to_string(aut.numStates()) + " states)";
  LcOptions lo;
  lo.earlyFailureDetection = opts_.earlyFailureDetection;
  lo.wantTrace = opts_.wantTraces;
  lo.partitionedTr = opts_.partitionedTr;
  lo.clusterLimit = opts_.clusterLimit;
  lo.quantMethod = opts_.quantMethod;
  // Each containment check runs in its own manager: the product machine has
  // its own variable space.
  obs::Span span("env.verify.lc");
  BddManager productMgr;
  LcChecker lc(productMgr, flat_, aut, fairness_, lo);
  LcResult r = lc.check();
  report.holds = r.contained;
  report.notes = r.notes;
  report.seconds = r.stats.seconds;
  report.usedEarlyFailure = r.stats.usedEarlyFailure;
  if (r.trace.has_value()) {
    // Render against the product FSM now; the trace's variable indices are
    // only meaningful in the product manager.
    report.notes.push_back("error trace (design + monitor):\n" +
                           lc.formatTrace(*r.trace));
  }
  uint64_t us = toMicros(r.stats.seconds);
  obs::counter("env.lc.micros").add(us);
  obs::counter("env.props.lc").add();
  metrics_.lcSeconds += static_cast<double>(us) * 1e-6;
  ++metrics_.numLcProps;
  return report;
}

BugReport Environment::verify(const PifProperty& property) {
  if (property.kind == PifProperty::Kind::Ctl) {
    return verifyCtl(property.name, property.ctl);
  }
  return verifyAutomaton(property.name, property.aut);
}

std::vector<BugReport> Environment::verifyAll() {
  std::vector<BugReport> reports;
  reports.reserve(properties_.size());
  for (const PifProperty& p : properties_) reports.push_back(verify(p));
  return reports;
}

}  // namespace hsis
