#include "hsis/environment.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace hsis {

namespace {

/// Seconds -> whole microseconds and back: Metrics quantizes through the
/// same integer ticks the env.* registry entries carry, so the two views
/// stay exactly equal (see test_obs MetricsMatchesRegistry).
double roundToMicros(double seconds) {
  if (seconds <= 0) return 0.0;
  return static_cast<double>(
             static_cast<uint64_t>(std::llround(seconds * 1e6))) *
         1e-6;
}

}  // namespace

Environment::Environment() : Environment(Options{}) {}
Environment::Environment(Options options) : session_(options) {}
Environment::~Environment() = default;

void Environment::readVerilog(const std::string& text, const std::string& top) {
  session_.load({Session::DesignSource::Kind::Verilog, text, top});
  metrics_.linesVerilog = session_.linesVerilog();
  metrics_.linesBlifMv = session_.linesBlifMv();
}

void Environment::readBlifMv(const std::string& text) {
  session_.load({Session::DesignSource::Kind::BlifMv, text, ""});
  metrics_.linesVerilog = session_.linesVerilog();
  metrics_.linesBlifMv = session_.linesBlifMv();
}

void Environment::readPif(const std::string& text) {
  PifFile file = parsePif(text);
  for (PifProperty& p : file.properties) properties_.push_back(std::move(p));
  addFairness(file.fairness);
}

void Environment::addProperty(PifProperty property) {
  properties_.push_back(std::move(property));
}

void Environment::addFairness(const FairnessSpec& fairness) {
  session_.addFairness(fairness);  // fairness affects the CTL semantics
}

void Environment::build() {
  bool wasBuilt = session_.isBuilt();
  session_.build();
  if (!wasBuilt)
    metrics_.readSeconds =
        static_cast<double>(session_.lastBuildMicros()) * 1e-6;
}

double Environment::reachedStates() {
  metrics_.reachedStates = session_.reachedStates();
  return metrics_.reachedStates;
}

std::string Environment::statsJson() const { return obs::snapshotJson(); }

BugReport Environment::verifyCtl(const std::string& name,
                                 const CtlRef& formula) {
  BugReport report = session_.checkCtl(name, formula);
  metrics_.mcSeconds += roundToMicros(report.seconds);
  ++metrics_.numCtlFormulas;
  return report;
}

BugReport Environment::verifyAutomaton(const std::string& name,
                                       const Automaton& aut) {
  BugReport report = session_.checkAutomaton(name, aut);
  metrics_.lcSeconds += roundToMicros(report.seconds);
  ++metrics_.numLcProps;
  return report;
}

BugReport Environment::verify(const PifProperty& property) {
  if (property.kind == PifProperty::Kind::Ctl) {
    return verifyCtl(property.name, property.ctl);
  }
  return verifyAutomaton(property.name, property.aut);
}

std::vector<BugReport> Environment::verifyAll() {
  std::vector<BugReport> reports;
  reports.reserve(properties_.size());
  for (const PifProperty& p : properties_) reports.push_back(verify(p));
  return reports;
}

}  // namespace hsis
