// hsis::Environment — the top of the toolflow (paper Figure 1): read a
// design in Verilog or BLIF-MV, read properties and fairness constraints in
// PIF, build the symbolic machine, run both verification paradigms, and
// produce bug reports for the debugger.
//
// Environment is now a thin facade over hsis::Session (session.hpp), which
// owns the BddManager and every structure derived from the design and can
// be pooled/reused by long-lived drivers (hsis_serve). Environment adds
// the batch-oriented surface: a cumulative property list, Table-1-shaped
// Metrics, and verifyAll().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hsis/session.hpp"

namespace hsis {

class Environment {
 public:
  using Options = Session::Options;

  /// Statistics in the shape of the paper's Table 1. Timings come from
  /// hsis_obs wall timers and are mirrored into the process-wide registry
  /// under `env.*` names (env.read.micros, env.mc.micros, env.lc.micros,
  /// env.props.ctl, env.props.lc, env.reached.states).
  struct Metrics {
    size_t linesVerilog = 0;
    size_t linesBlifMv = 0;
    double readSeconds = 0.0;  ///< parse + flatten + relation BDDs + TR
    double reachedStates = 0.0;
    size_t numLcProps = 0;
    size_t numCtlFormulas = 0;
    double lcSeconds = 0.0;
    double mcSeconds = 0.0;
  };

  Environment();
  explicit Environment(Options options);
  ~Environment();
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // ---- inputs ----
  /// Compile Verilog through vl2mv; replaces any previous design. Reading
  /// the identical source again is a no-op (the session keeps it resident).
  void readVerilog(const std::string& text, const std::string& top = "");
  /// Read a BLIF-MV design directly.
  void readBlifMv(const std::string& text);
  /// Read properties and fairness constraints (cumulative).
  void readPif(const std::string& text);
  void addProperty(PifProperty property);
  void addFairness(const FairnessSpec& fairness);

  // ---- build ----
  /// Flatten the hierarchy and build the FSM + transition relation. Called
  /// automatically by the verify entry points if needed; idempotent.
  void build();
  [[nodiscard]] bool isBuilt() const { return session_.isBuilt(); }

  // ---- verification ----
  /// Verify every property read so far, in order.
  std::vector<BugReport> verifyAll();
  BugReport verifyCtl(const std::string& name, const CtlRef& formula);
  BugReport verifyAutomaton(const std::string& name, const Automaton& aut);
  BugReport verify(const PifProperty& property);

  // ---- access ----
  [[nodiscard]] const blifmv::Design& design() const {
    return session_.design();
  }
  [[nodiscard]] const blifmv::Model& flatModel() const {
    return session_.flatModel();
  }
  const Fsm& fsm() { return session_.fsm(); }
  const TransitionRelation& tr() { return session_.tr(); }
  /// The CTL checker (fairness constraints applied); valid until the next
  /// read*() call.
  CtlChecker& checker() { return session_.checker(); }
  Simulator makeSimulator(uint64_t seed = 1) {
    return session_.makeSimulator(seed);
  }
  /// Reachable state count (computed on demand).
  double reachedStates();
  /// Coverage analysis of the reachable states (hsis_cov; see cov/cov.hpp).
  cov::Report coverage(cov::Options options = {}) {
    return session_.coverage(std::move(options));
  }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  /// Full observability snapshot as JSON (hsis-obs-v1): the metrics
  /// registry (bdd.*, fsm.*, ctl.*, lc.*, env.*) plus the nested span
  /// tree with per-phase wall times. Valid (empty) under HSIS_OBS_DISABLE.
  [[nodiscard]] std::string statsJson() const;
  [[nodiscard]] const std::vector<PifProperty>& properties() const {
    return properties_;
  }
  [[nodiscard]] const FairnessSpec& fairness() const {
    return session_.fairness();
  }
  [[nodiscard]] const std::vector<std::string>& notes() const {
    return session_.notes();
  }
  /// The underlying reusable session (design + manager lifecycle).
  Session& session() { return session_; }

 private:
  Session session_;
  std::vector<PifProperty> properties_;
  Metrics metrics_;
};

}  // namespace hsis
