// hsis::Environment — the top of the toolflow (paper Figure 1): read a
// design in Verilog or BLIF-MV, read properties and fairness constraints in
// PIF, build the symbolic machine, run both verification paradigms, and
// produce bug reports for the debugger.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blifmv/blifmv.hpp"
#include "ctl/mc.hpp"
#include "debug/report.hpp"
#include "fsm/fsm.hpp"
#include "fsm/image.hpp"
#include "lc/lc.hpp"
#include "obs/obs.hpp"
#include "pif/pif.hpp"
#include "sim/simulator.hpp"

namespace hsis {

class Environment {
 public:
  struct Options {
    bool partitionedTr = true;
    size_t clusterLimit = 5000;
    QuantMethod quantMethod = QuantMethod::Greedy;
    bool earlyFailureDetection = true;
    bool useReachedDontCares = true;
    bool wantTraces = true;
  };

  /// Statistics in the shape of the paper's Table 1. Timings come from
  /// hsis_obs wall timers and are mirrored into the process-wide registry
  /// under `env.*` names (env.read.micros, env.mc.micros, env.lc.micros,
  /// env.props.ctl, env.props.lc, env.reached.states).
  struct Metrics {
    size_t linesVerilog = 0;
    size_t linesBlifMv = 0;
    double readSeconds = 0.0;  ///< parse + flatten + relation BDDs + TR
    double reachedStates = 0.0;
    size_t numLcProps = 0;
    size_t numCtlFormulas = 0;
    double lcSeconds = 0.0;
    double mcSeconds = 0.0;
  };

  Environment();
  explicit Environment(Options options);
  ~Environment();
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // ---- inputs ----
  /// Compile Verilog through vl2mv; replaces any previous design.
  void readVerilog(const std::string& text, const std::string& top = "");
  /// Read a BLIF-MV design directly.
  void readBlifMv(const std::string& text);
  /// Read properties and fairness constraints (cumulative).
  void readPif(const std::string& text);
  void addProperty(PifProperty property);
  void addFairness(const FairnessSpec& fairness);

  // ---- build ----
  /// Flatten the hierarchy and build the FSM + transition relation. Called
  /// automatically by the verify entry points if needed.
  void build();
  [[nodiscard]] bool isBuilt() const { return fsm_ != nullptr; }

  // ---- verification ----
  /// Verify every property read so far, in order.
  std::vector<BugReport> verifyAll();
  BugReport verifyCtl(const std::string& name, const CtlRef& formula);
  BugReport verifyAutomaton(const std::string& name, const Automaton& aut);
  BugReport verify(const PifProperty& property);

  // ---- access ----
  [[nodiscard]] const blifmv::Design& design() const { return design_; }
  [[nodiscard]] const blifmv::Model& flatModel() const { return flat_; }
  const Fsm& fsm();
  const TransitionRelation& tr();
  /// The CTL checker (fairness constraints applied); valid until the next
  /// read*() call.
  CtlChecker& checker();
  Simulator makeSimulator(uint64_t seed = 1);
  /// Reachable state count (computed on demand).
  double reachedStates();
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  /// Full observability snapshot as JSON (hsis-obs-v1): the metrics
  /// registry (bdd.*, fsm.*, ctl.*, lc.*, env.*) plus the nested span
  /// tree with per-phase wall times. Valid (empty) under HSIS_OBS_DISABLE.
  [[nodiscard]] std::string statsJson() const;
  [[nodiscard]] const std::vector<PifProperty>& properties() const {
    return properties_;
  }
  [[nodiscard]] const FairnessSpec& fairness() const { return fairness_; }
  [[nodiscard]] const std::vector<std::string>& notes() const { return notes_; }

 private:
  std::vector<Bdd> ctlFairnessSets();

  Options opts_;
  blifmv::Design design_;
  blifmv::Model flat_;
  std::string verilogText_;
  std::vector<PifProperty> properties_;
  FairnessSpec fairness_;
  std::vector<std::string> notes_;

  std::unique_ptr<BddManager> mgr_;
  std::unique_ptr<Fsm> fsm_;
  std::optional<TransitionRelation> tr_;
  std::unique_ptr<CtlChecker> checker_;
  Metrics metrics_;
};

}  // namespace hsis
