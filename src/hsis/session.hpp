// hsis::Session — the reusable verification session underneath
// hsis::Environment and the hsis_serve worker pool.
//
// A Session owns one BddManager plus everything derived from a loaded
// design (flattened model, FSM, transition relation, CTL checker) and
// answers repeated check requests against it. The paper presents HSIS as an
// interactive environment — load a design once, query it many times — and
// Session is that shape as an object: `load()` is digest-keyed, so loading
// a design that is already resident (same source text) is a no-op that
// skips parse, flatten, and TR construction entirely. That no-op is what
// the hsis_serve compiled-design cache trades on.
//
// Lifecycle:
//   Session s;                       // one manager-slot, reusable forever
//   s.load(src);  -> true            // compiled (cache miss)
//   s.build();                       // flatten + FSM + TR (idempotent)
//   s.check(p); s.check(q); ...      // repeated queries, any order
//   s.load(src); -> false            // same digest: resident, nothing done
//   s.load(other); -> true           // new design: fresh BddManager
//
// Abort safety: a cooperative abort (obs::AbortedError) unwinding out of
// load()/build() leaves the Session *empty* (not resident) so the next
// load() restarts cleanly; an abort out of a check leaves the built design
// resident — the session survives to serve the next request, which is the
// contract the hsis_serve workers rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blifmv/blifmv.hpp"
#include "cov/cov.hpp"
#include "ctl/mc.hpp"
#include "debug/report.hpp"
#include "fsm/fsm.hpp"
#include "fsm/image.hpp"
#include "lc/lc.hpp"
#include "pif/pif.hpp"
#include "sim/simulator.hpp"

namespace hsis {

class Session {
 public:
  struct Options {
    bool partitionedTr = true;
    size_t clusterLimit = 5000;
    QuantMethod quantMethod = QuantMethod::Greedy;
    bool earlyFailureDetection = true;
    bool useReachedDontCares = true;
    bool wantTraces = true;
  };

  /// One design input, self-describing enough to compile and to key the
  /// compiled-design cache.
  struct DesignSource {
    enum class Kind : uint8_t { Verilog, BlifMv };
    Kind kind = Kind::Verilog;
    std::string text;
    std::string top;  ///< Verilog top module; empty = first in file

    /// Stable content digest (kind + top + text, FNV-1a hex). Two sources
    /// with equal digests compile to the same design.
    [[nodiscard]] std::string digest() const;
  };

  Session();
  explicit Session(Options options);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- design lifecycle ----
  /// Load a design. Returns false when the same source (by digest) is
  /// already resident and built — nothing is parsed, flattened, or rebuilt.
  /// Returns true when the source was (re)compiled; call build() next.
  bool load(const DesignSource& source);
  /// Drop the design and every derived structure, including the manager
  /// (compiled-design cache eviction). The Session stays usable.
  void unload();
  /// True when a design is loaded and its symbolic machine is built.
  [[nodiscard]] bool resident() const { return fsm_ != nullptr; }
  [[nodiscard]] bool designLoaded() const { return !design_.models.empty(); }
  /// Digest of the loaded source ("" when none).
  [[nodiscard]] const std::string& digest() const { return digest_; }

  // ---- build ----
  /// Flatten the hierarchy and build FSM + TR in a fresh BddManager.
  /// Idempotent: a no-op when already built. Mirrors wall time to the
  /// `env.read.micros` gauge, like the paper's Table-1 "read" column.
  void build();
  [[nodiscard]] bool isBuilt() const { return fsm_ != nullptr; }
  /// Microseconds the last *actual* build took; 0 right after a load()
  /// that found the design resident.
  [[nodiscard]] uint64_t lastBuildMicros() const { return lastBuildMicros_; }
  /// Split of lastBuildMicros(): flatten + FSM elaboration vs transition-
  /// relation construction. Both 0 after a resident-hit load(); the serve
  /// pool reports them as the "parse" and "tr" request stages.
  [[nodiscard]] uint64_t lastFlattenMicros() const {
    return lastFlattenMicros_;
  }
  [[nodiscard]] uint64_t lastTrMicros() const { return lastTrMicros_; }

  // ---- fairness (affects the CTL checker, not the machine) ----
  /// Replace the fairness constraints. The checker is rebuilt lazily only
  /// when the constraints actually changed, so re-submitting the same
  /// request keeps the reached-state computation warm.
  void setFairness(const FairnessSpec& fairness);
  void addFairness(const FairnessSpec& fairness);
  [[nodiscard]] const FairnessSpec& fairness() const { return fairness_; }
  /// Per-request trace switch (rebuilds the checker only on change).
  void setWantTraces(bool want);

  // ---- checks ----
  BugReport checkCtl(const std::string& name, const CtlRef& formula);
  BugReport checkAutomaton(const std::string& name, const Automaton& aut);
  BugReport check(const PifProperty& property);

  // ---- access ----
  [[nodiscard]] const blifmv::Design& design() const { return design_; }
  [[nodiscard]] const blifmv::Model& flatModel() const { return flat_; }
  const Fsm& fsm();
  const TransitionRelation& tr();
  /// The CTL checker with the current fairness applied; valid until the
  /// next load()/setFairness().
  CtlChecker& checker();
  BddManager& manager();
  Simulator makeSimulator(uint64_t seed = 1);
  /// Reachable state count (computed on demand, cached in the checker).
  double reachedStates();
  /// Coverage analysis of the reachable state set (hsis_cov). Reuses the
  /// checker's cached fixpoint and its frontier series; returns a
  /// valid-empty disabled report under HSIS_OBS_DISABLE/HSIS_COV_DISABLE.
  cov::Report coverage(cov::Options options = {});
  [[nodiscard]] size_t linesVerilog() const { return linesVerilog_; }
  [[nodiscard]] size_t linesBlifMv() const { return linesBlifMv_; }
  [[nodiscard]] const std::vector<std::string>& notes() const {
    return notes_;
  }
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  std::vector<Bdd> ctlFairnessSets();
  [[nodiscard]] std::string checkerKey() const;
  void resetMachine();

  Options opts_;
  blifmv::Design design_;
  blifmv::Model flat_;
  FairnessSpec fairness_;
  std::vector<std::string> notes_;
  std::string digest_;
  size_t linesVerilog_ = 0;
  size_t linesBlifMv_ = 0;
  uint64_t lastBuildMicros_ = 0;
  uint64_t lastFlattenMicros_ = 0;
  uint64_t lastTrMicros_ = 0;

  std::unique_ptr<BddManager> mgr_;
  std::unique_ptr<Fsm> fsm_;
  std::optional<TransitionRelation> tr_;
  std::unique_ptr<CtlChecker> checker_;
  std::string builtCheckerKey_;  ///< fairness+options key checker_ embodies
};

}  // namespace hsis
