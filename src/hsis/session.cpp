#include "hsis/session.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/control.hpp"
#include "obs/ledger.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "vl2mv/vl2mv.hpp"

namespace hsis {

namespace {

uint64_t toMicros(double seconds) {
  return seconds <= 0 ? 0 : static_cast<uint64_t>(std::llround(seconds * 1e6));
}

int64_t clampToGauge(double v) {
  constexpr double kMax = 9.2e18;
  if (v >= kMax) return static_cast<int64_t>(kMax);
  if (v <= 0) return 0;
  return static_cast<int64_t>(v);
}

}  // namespace

std::string Session::DesignSource::digest() const {
  // Kind and top participate: the same text compiled as BLIF-MV vs Verilog,
  // or under a different top module, is a different compiled design.
  std::string key;
  key += kind == Kind::Verilog ? "v:" : "mv:";
  key += top;
  key += '\n';
  key += text;
  return obs::ledger::digestOf(key);
}

Session::Session() : Session(Options{}) {}
Session::Session(Options options) : opts_(options) {}
Session::~Session() = default;

void Session::resetMachine() {
  checker_.reset();
  tr_.reset();
  fsm_.reset();
  mgr_.reset();
  builtCheckerKey_.clear();
}

bool Session::load(const DesignSource& source) {
  const std::string digest = source.digest();
  if (digest == digest_ && resident()) {
    // Compiled-design cache hit: the symbolic machine is already resident.
    lastBuildMicros_ = 0;
    lastFlattenMicros_ = 0;
    lastTrMicros_ = 0;
    return false;
  }
  // (Re)compile. Clear the digest first so an abort or parse error leaves
  // the session empty rather than claiming a design it does not hold.
  digest_.clear();
  resetMachine();
  notes_.clear();
  try {
    if (source.kind == DesignSource::Kind::Verilog) {
      design_ = vl2mv::compile(source.text, source.top);
      linesVerilog_ = vl2mv::verilogLineCount(source.text);
      linesBlifMv_ = blifmv::lineCount(design_);
      HSIS_LOG_INFO("vl2mv.compile", "verilog compiled to BLIF-MV",
                    {{"top", std::string_view(source.top.empty()
                                                  ? "(auto)"
                                                  : source.top)},
                     {"lines_verilog", linesVerilog_},
                     {"lines_blifmv", linesBlifMv_}});
    } else {
      design_ = blifmv::parse(source.text);
      linesVerilog_ = 0;
      linesBlifMv_ = blifmv::lineCount(design_);
      HSIS_LOG_INFO("blifmv.parse", "BLIF-MV design parsed",
                    {{"models", design_.models.size()},
                     {"lines_blifmv", linesBlifMv_}});
    }
  } catch (...) {
    design_ = blifmv::Design{};
    throw;
  }
  digest_ = digest;
  return true;
}

void Session::unload() {
  resetMachine();
  design_ = blifmv::Design{};
  flat_ = blifmv::Model{};
  notes_.clear();
  digest_.clear();
  linesVerilog_ = 0;
  linesBlifMv_ = 0;
  lastBuildMicros_ = 0;
  lastFlattenMicros_ = 0;
  lastTrMicros_ = 0;
}

void Session::build() {
  if (resident()) return;
  if (design_.models.empty())
    throw std::runtime_error("hsis: no design loaded");
  obs::Span span("env.build");
  obs::WallTimer timer;
  uint64_t flattenMicros = 0;
  try {
    flat_ = blifmv::flatten(design_);
    mgr_ = std::make_unique<BddManager>();
    fsm_ = std::make_unique<Fsm>(*mgr_, flat_);
    for (const std::string& d : fsm_->diagnostics()) {
      // Elaboration diagnostics double as warn-level log events so they
      // land in the ring (and a crash dump) even when nobody reads notes().
      HSIS_LOG_WARN("env.elaborate", "elaboration diagnostic",
                    {{"note", std::string_view(d)}});
      notes_.push_back(d);
    }
    flattenMicros = timer.micros();
    if (opts_.partitionedTr) {
      tr_ = TransitionRelation::partitioned(*fsm_, opts_.clusterLimit);
    } else {
      tr_ = TransitionRelation::monolithic(*fsm_, opts_.quantMethod);
    }
  } catch (...) {
    // An abort (or any failure) mid-build must not leave a half-built
    // machine resident: drop everything derived and the digest claim, so
    // the next load() starts from scratch and the Session itself survives.
    resetMachine();
    digest_.clear();
    throw;
  }
  lastBuildMicros_ = toMicros(timer.seconds());
  lastFlattenMicros_ = flattenMicros;
  lastTrMicros_ = lastBuildMicros_ > flattenMicros
                      ? lastBuildMicros_ - flattenMicros
                      : 0;
  obs::gauge("env.read.micros").set(static_cast<int64_t>(lastBuildMicros_));
}

std::string Session::checkerKey() const {
  // A cheap structural key over everything the checker bakes in; when it
  // matches, the existing checker (and its cached reached set) is reused.
  std::string key = opts_.wantTraces ? "t|" : "-|";
  for (const SigExprRef& e : fairness_.noStay) key += "n:" + e->toString() + ";";
  for (const SigExprRef& e : fairness_.buchi) key += "b:" + e->toString() + ";";
  for (const auto& [from, to] : fairness_.fairEdges)
    key += "e:" + from->toString() + ">" + to->toString() + ";";
  return key;
}

void Session::setFairness(const FairnessSpec& fairness) {
  fairness_ = fairness;
  if (checker_ != nullptr && builtCheckerKey_ != checkerKey())
    checker_.reset();
}

void Session::addFairness(const FairnessSpec& fairness) {
  fairness_.noStay.insert(fairness_.noStay.end(), fairness.noStay.begin(),
                          fairness.noStay.end());
  fairness_.buchi.insert(fairness_.buchi.end(), fairness.buchi.begin(),
                         fairness.buchi.end());
  fairness_.fairEdges.insert(fairness_.fairEdges.end(),
                             fairness.fairEdges.begin(),
                             fairness.fairEdges.end());
  if (checker_ != nullptr && builtCheckerKey_ != checkerKey())
    checker_.reset();
}

void Session::setWantTraces(bool want) {
  if (opts_.wantTraces == want) return;
  opts_.wantTraces = want;
  if (checker_ != nullptr && builtCheckerKey_ != checkerKey())
    checker_.reset();
}

const Fsm& Session::fsm() {
  build();
  return *fsm_;
}

const TransitionRelation& Session::tr() {
  build();
  return *tr_;
}

BddManager& Session::manager() {
  build();
  return *mgr_;
}

std::vector<Bdd> Session::ctlFairnessSets() {
  std::vector<Bdd> sets;
  for (const SigExprRef& e : fairness_.noStay)
    sets.push_back(!evalSigExpr(e, *fsm_));
  for (const SigExprRef& e : fairness_.buchi)
    sets.push_back(evalSigExpr(e, *fsm_));
  for (const auto& [from, to] : fairness_.fairEdges) {
    // Fair CTL takes Büchi constraints; a fair edge is approximated by its
    // target states (exact when every entry into `to` uses such an edge).
    (void)from;
    sets.push_back(evalSigExpr(to, *fsm_));
    if (notes_.empty() ||
        notes_.back().find("fair-edge") == std::string::npos) {
      notes_.push_back(
          "fair-edge constraint approximated by its target states for CTL "
          "model checking (exact in language containment)");
    }
  }
  return sets;
}

CtlChecker& Session::checker() {
  build();
  if (checker_ == nullptr) {
    McOptions mo;
    mo.earlyFailureDetection = opts_.earlyFailureDetection;
    mo.useReachedDontCares = opts_.useReachedDontCares;
    mo.wantTrace = opts_.wantTraces;
    checker_ =
        std::make_unique<CtlChecker>(*fsm_, *tr_, ctlFairnessSets(), mo);
    builtCheckerKey_ = checkerKey();
  }
  return *checker_;
}

Simulator Session::makeSimulator(uint64_t seed) {
  build();
  return Simulator(*fsm_, *tr_, seed);
}

double Session::reachedStates() {
  CtlChecker& mc = checker();
  Bdd reached = mc.reached();
  double states = fsm_->countStates(reached);
  obs::gauge("env.reached.states").set(clampToGauge(states));
  return states;
}

cov::Report Session::coverage(cov::Options options) {
  CtlChecker& mc = checker();
  const Bdd& reached = mc.reached();  // cached fixpoint
  if (options.frontierNewStates.empty())
    options.frontierNewStates = mc.frontierNewStates();
  return cov::analyze(*fsm_, *tr_, reached, options);
}

BugReport Session::checkCtl(const std::string& name, const CtlRef& formula) {
  BugReport report;
  report.paradigm = BugReport::Paradigm::ModelChecking;
  report.propertyName = name;
  report.propertyText = formula->toString();
  obs::Span span("env.verify.ctl");
  McResult r = checker().check(formula);
  report.holds = r.holds;
  report.trace = r.counterexample;
  report.seconds = r.stats.seconds;
  report.usedEarlyFailure = r.stats.usedEarlyFailure;
  obs::counter("env.mc.micros").add(toMicros(r.stats.seconds));
  obs::counter("env.props.ctl").add();
  return report;
}

BugReport Session::checkAutomaton(const std::string& name,
                                  const Automaton& aut) {
  build();
  BugReport report;
  report.paradigm = BugReport::Paradigm::LanguageContainment;
  report.propertyName = name;
  report.propertyText = "automaton " + aut.name() + " (" +
                        std::to_string(aut.numStates()) + " states)";
  LcOptions lo;
  lo.earlyFailureDetection = opts_.earlyFailureDetection;
  lo.wantTrace = opts_.wantTraces;
  lo.partitionedTr = opts_.partitionedTr;
  lo.clusterLimit = opts_.clusterLimit;
  lo.quantMethod = opts_.quantMethod;
  // Each containment check runs in its own manager: the product machine has
  // its own variable space.
  obs::Span span("env.verify.lc");
  BddManager productMgr;
  LcChecker lc(productMgr, flat_, aut, fairness_, lo);
  LcResult r = lc.check();
  report.holds = r.contained;
  report.notes = r.notes;
  report.seconds = r.stats.seconds;
  report.usedEarlyFailure = r.stats.usedEarlyFailure;
  if (r.trace.has_value()) {
    // Render against the product FSM now; the trace's variable indices are
    // only meaningful in the product manager.
    report.notes.push_back("error trace (design + monitor):\n" +
                           lc.formatTrace(*r.trace));
  }
  obs::counter("env.lc.micros").add(toMicros(r.stats.seconds));
  obs::counter("env.props.lc").add();
  return report;
}

BugReport Session::check(const PifProperty& property) {
  if (property.kind == PifProperty::Kind::Ctl) {
    return checkCtl(property.name, property.ctl);
  }
  return checkAutomaton(property.name, property.aut);
}

}  // namespace hsis
