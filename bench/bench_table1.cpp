// Regenerates the paper's Table 1 over the bundled model suite:
//   example | #lines Verilog | #lines BLIF-MV | read time | #reached states
//           | #lc props | lc time | #CTL formulas | mc time
// Absolute times differ from the 1994 DECsystem 5900/260, but the shape —
// toy examples are trivial, 2mdlc has the fattest BLIF-MV, the scheduler
// has the largest state space — reproduces (see EXPERIMENTS.md).
#include <cstdio>
#include <string>

#include "hsis/environment.hpp"
#include "models/models.hpp"

#include "obs/control.hpp"

int main(int argc, char** argv) {
  hsis::obs::initDriverObs(argc, argv, {.driverName = "bench_table1"});
  return hsis::obs::driverGuard([&] {
  std::printf("Table 1: the HSIS example suite\n");
  std::printf(
      "%-10s %9s %9s %10s %15s %9s %9s %7s %9s\n", "example", "lines.v",
      "lines.mv", "read(s)", "reached", "lc.props", "lc(s)", "ctl", "mc(s)");

  for (const auto& model : hsis::models::all()) {
    hsis::Environment env;
    env.readVerilog(std::string(model.verilog), std::string(model.top));
    env.readPif(std::string(model.pif));
    env.build();
    double reached = env.reachedStates();
    for (const hsis::BugReport& r : env.verifyAll()) (void)r;
    const auto& m = env.metrics();
    std::printf("%-10s %9zu %9zu %10.2f %15.0f %9zu %9.2f %7zu %9.2f\n",
                std::string(model.name).c_str(), m.linesVerilog, m.linesBlifMv,
                m.readSeconds, reached, m.numLcProps, m.lcSeconds,
                m.numCtlFormulas, m.mcSeconds);
  }
  std::printf(
      "\n(read = parse + flatten + relation BDDs + transition relation;\n"
      " all properties produce their designed verdicts — see tests)\n");
  return 0;
  });
}
