// Early quantification (paper Section 4 and [14]): reproduces the claim
// that scheduling and executing the multiplication/quantification of
// thousands of relations and variables takes only seconds, and the ablation
// between the two planners and the naive baseline.
//
// Output: per design, the number of relations, the number of quantified
// variables, and build time + peak intermediate BDD size per method.
#include <chrono>
#include <cstdio>
#include <string>

#include "fsm/quantify.hpp"
#include "hsis/environment.hpp"
#include "models/models.hpp"
#include "vl2mv/vl2mv.hpp"

#include "obs/control.hpp"

using clock_type = std::chrono::steady_clock;

static double seconds(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

int main(int argc, char** argv) {
  hsis::obs::initDriverObs(argc, argv, {.driverName = "bench_quantify"});
  return hsis::obs::driverGuard([&] {
  std::printf("Early quantification: schedule + execute  T(x,y) = exists i . prod R_j\n");
  std::printf("%-10s %7s %7s | %-10s %10s %12s\n", "design", "rels", "vars",
              "method", "build(s)", "peak nodes");

  for (const auto& model : hsis::models::all()) {
    auto design = hsis::vl2mv::compile(std::string(model.verilog),
                                       std::string(model.top));
    auto flat = hsis::blifmv::flatten(design);

    for (hsis::QuantMethod method :
         {hsis::QuantMethod::Greedy, hsis::QuantMethod::Tree,
          hsis::QuantMethod::Naive}) {
      // The naive baseline explodes beyond the toy designs; skip it there.
      bool small = model.name == "pingpong" || model.name == "philos";
      if (method == hsis::QuantMethod::Naive && !small) {
        std::printf("%-10s %7s %7s | %-10s %10s %12s\n",
                    std::string(model.name).c_str(), "", "", "naive",
                    "(skipped)", "-");
        continue;
      }
      hsis::BddManager mgr;
      hsis::Fsm fsm(mgr, flat);
      size_t rels = fsm.relations().size();
      size_t qvars = mgr.support(fsm.nonStateCube()).size();
      hsis::QuantExecStats stats;
      auto t0 = clock_type::now();
      auto tr = hsis::TransitionRelation::monolithic(fsm, method, &stats);
      double dt = seconds(t0);
      std::printf("%-10s %7zu %7zu | %-10s %10.3f %12zu\n",
                  std::string(model.name).c_str(), rels, qvars,
                  toString(method).c_str(), dt, stats.peakIntermediateNodes);
      std::fflush(stdout);
    }
  }

  // The paper's Section-4 data point: "around 1600 relations had to be
  // multiplied and 1500 variables had to be quantified out. Determining the
  // schedule and performing the multiplication and quantification takes
  // only several seconds." Reproduce it on a synthetic netlist of the same
  // scale: a web of 1600 small gate relations chained through 1500
  // intermediate wires feeding 100 latches.
  {
    constexpr uint32_t kLatches = 100;
    constexpr uint32_t kDepth = 15;  // wires per latch cone
    hsis::BddManager mgr;
    std::vector<hsis::Bdd> relations;
    std::vector<bool> quantifiable;
    // Present/next rails interleaved (the ordering rule of [1]); wires
    // below them — they are quantified out anyway.
    std::vector<hsis::BddVar> state, nextState;
    for (uint32_t l = 0; l < kLatches; ++l) {
      state.push_back(mgr.newVar());
      nextState.push_back(mgr.newVar());
    }
    std::vector<hsis::BddVar> wires;
    auto gateRelation = [&](hsis::BddVar out, hsis::BddVar a, hsis::BddVar b,
                            int kind) {
      hsis::Bdd fa = mgr.bddVar(a), fb = mgr.bddVar(b), fo = mgr.bddVar(out);
      hsis::Bdd fn = kind == 0 ? (fa & fb) : kind == 1 ? (fa | fb) : (fa ^ fb);
      return (fo & fn) | ((!fo) & !fn);
    };
    for (uint32_t l = 0; l < kLatches; ++l) {
      hsis::BddVar prev = state[l];
      for (uint32_t d = 0; d < kDepth; ++d) {
        hsis::BddVar w = mgr.newVar();
        // local coupling: each cone mixes its own latch and its neighbour
        hsis::BddVar other = state[(l + (d % 2)) % kLatches];
        relations.push_back(gateRelation(w, prev, other, static_cast<int>(d % 3)));
        wires.push_back(w);
        prev = w;
      }
      // next-state relation for latch l reads the cone output
      hsis::Bdd fy = mgr.bddVar(nextState[l]), fp = mgr.bddVar(prev);
      relations.push_back((fy & fp) | ((!fy) & !fp));
    }
    quantifiable.assign(mgr.numVars(), false);
    for (hsis::BddVar w : wires) quantifiable[w] = true;

    for (hsis::QuantMethod method :
         {hsis::QuantMethod::Greedy, hsis::QuantMethod::Tree}) {
      auto t0 = clock_type::now();
      hsis::QuantPlan plan =
          hsis::planQuantification(mgr, relations, quantifiable, method);
      double planS = seconds(t0);
      t0 = clock_type::now();
      hsis::QuantExecStats stats;
      hsis::Bdd t = hsis::executePlan(mgr, plan, relations, &stats);
      double execS = seconds(t0);
      std::printf(
          "synthetic  %7zu %7zu | %-10s plan %.3fs + exec %.3fs  "
          "(peak %zu, result %zu nodes)\n",
          relations.size(), wires.size(), toString(method).c_str(), planS,
          execS, stats.peakIntermediateNodes, t.nodeCount());
      std::fflush(stdout);
    }
  }

  std::printf(
      "\n(the synthetic rows reproduce the paper's Section-4 data point:\n"
      " ~1600 relations and ~1500 quantified variables are scheduled and\n"
      " executed in seconds)\n");
  return 0;
  });
}
