// Paper Section 5.2, point 3: "language containment is faster in general;
// however, CTL model checking is more efficient for invariance properties,
// since we have optimized the model checker with respect to these".
//
// For each design we pose the same invariance property to both paradigms,
// and (where the design has one) the same liveness property, and report the
// verification time of each.
#include <chrono>
#include <cstdio>
#include <string>

#include "hsis/environment.hpp"
#include "models/models.hpp"

#include "obs/control.hpp"

using clock_type = std::chrono::steady_clock;

namespace {

struct Row {
  const char* design;
  const char* kind;
  const char* ctl;           // formula text
  const char* automaton;     // PIF automaton block
  const char* fairness;      // PIF fairness block (may be "")
};

// Matched property pairs: the CTL formula and the automaton express the
// same requirement.
const Row kRows[] = {
    {"pingpong", "invariance",
     R"PIF(ctl p "AG !(ball=ping_side & ball=pong_side)";)PIF",
     R"PIF(automaton p { state ok init; state bad;
        edge ok -> ok on "!(ping_has & pong_has)";
        edge ok -> bad on "ping_has & pong_has";
        edge bad -> bad on "1"; accept stay ok; })PIF",
     R"PIF(fairness { nostay "ball=ping_side"; nostay "ball=pong_side"; })PIF"},
    {"pingpong", "liveness",
     R"PIF(ctl p "AG AF ball=pong_side";)PIF",
     R"PIF(automaton p { state wait init; state seen;
        edge wait -> seen on "pong_has"; edge wait -> wait on "!pong_has";
        edge seen -> wait on "!pong_has"; edge seen -> seen on "pong_has";
        accept buchi seen; })PIF",
     R"PIF(fairness { nostay "ball=ping_side"; nostay "ball=pong_side"; })PIF"},
    {"gigamax", "invariance",
     R"PIF(ctl p "AG (!(p0.st=owned & p1.st=owned) & !(p1.st=owned & p2.st=owned) & !(p0.st=owned & p2.st=owned))";)PIF",
     R"PIF(automaton p { state ok init; state bad;
        edge ok -> ok on "!two_owners";
        edge ok -> bad on "two_owners";
        edge bad -> bad on "1"; accept stay ok; })PIF",
     ""},
    {"scheduler", "liveness",
     R"PIF(ctl p "AG AF c0.running=1";)PIF",
     R"PIF(automaton p { state wait init; state seen;
        edge wait -> seen on "c0.running=1"; edge wait -> wait on "!(c0.running=1)";
        edge seen -> wait on "!(c0.running=1)"; edge seen -> seen on "c0.running=1";
        accept buchi seen; })PIF",
     R"PIF(fairness { nostay "c0.running=1"; nostay "c1.running=1";
        nostay "c2.running=1"; nostay "c3.running=1"; nostay "c4.running=1";
        nostay "c5.running=1"; nostay "c6.running=1"; nostay "c7.running=1";
        nostay "c8.running=1"; nostay "c9.running=1"; })PIF"},
    {"dcnew", "invariance",
     R"PIF(ctl p "AG (!(ch0.st=transfer & ch1.st=transfer) & !(ch1.st=transfer & ch2.st=transfer) & !(ch0.st=transfer & ch2.st=transfer))";)PIF",
     R"PIF(automaton p { state ok init; state bad;
        edge ok -> ok on "!((t0 & t1) | (t1 & t2) | (t0 & t2))";
        edge ok -> bad on "(t0 & t1) | (t1 & t2) | (t0 & t2)";
        edge bad -> bad on "1"; accept stay ok; })PIF",
     ""},
    {"2mdlc", "invariance",
     R"PIF(ctl p "AG (l0.err=0 & l1.err=0)";)PIF",
     R"PIF(automaton p { state ok init; state bad;
        edge ok -> ok on "!(l0.err=1 | l1.err=1)";
        edge ok -> bad on "l0.err=1 | l1.err=1";
        edge bad -> bad on "1"; accept stay ok; })PIF",
     ""},
    {"2mdlc", "liveness",
     R"PIF(ctl p "AG AF l0.deliver=1";)PIF",
     R"PIF(automaton p { state wait init; state seen;
        edge wait -> seen on "l0.deliver=1"; edge wait -> wait on "!(l0.deliver=1)";
        edge seen -> wait on "!(l0.deliver=1)"; edge seen -> seen on "l0.deliver=1";
        accept buchi seen; })PIF",
     R"PIF(fairness { buchi "l0.acked=1"; buchi "l1.acked=1"; })PIF"},
};

}  // namespace

int main(int argc, char** argv) {
  hsis::obs::initDriverObs(argc, argv, {.driverName = "bench_lc_vs_mc"});
  return hsis::obs::driverGuard([&] {
  std::printf("LC vs MC on matched properties (seconds, verdicts agree)\n");
  std::printf("%-10s %-10s %10s %10s %8s\n", "design", "kind", "mc(s)",
              "lc(s)", "verdict");

  for (const Row& row : kRows) {
    const auto* model = hsis::models::find(row.design);
    hsis::Environment env;
    env.readVerilog(std::string(model->verilog), std::string(model->top));
    if (row.fairness[0] != '\0') env.readPif(row.fairness);
    env.build();
    env.reachedStates();  // shared setup outside the timed region

    hsis::PifFile ctlProp = hsis::parsePif(row.ctl);
    auto t0 = clock_type::now();
    hsis::BugReport mc = env.verify(ctlProp.properties.at(0));
    double mcS = std::chrono::duration<double>(clock_type::now() - t0).count();

    hsis::PifFile autProp = hsis::parsePif(row.automaton);
    t0 = clock_type::now();
    hsis::BugReport lc = env.verify(autProp.properties.at(0));
    double lcS = std::chrono::duration<double>(clock_type::now() - t0).count();

    std::printf("%-10s %-10s %10.3f %10.3f %8s%s\n", row.design, row.kind,
                mcS, lcS, mc.holds ? "PASS" : "FAIL",
                mc.holds == lc.holds ? "" : "  (MISMATCH!)");
  }
  std::printf(
      "\n(note: MC reuses the design FSM while each LC check composes and\n"
      " re-reaches a product machine; invariance favours MC's optimized\n"
      " early-failure path, matching the paper's observation)\n");
  return 0;
  });
}
