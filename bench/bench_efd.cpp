// Early failure detection (paper Section 5.4): "most errors can be
// detected with only a few reachability steps". We seed bugs into the
// suite designs and compare invariant checking with EFD (stop at the first
// failing frontier) against the full fixpoint computation.
#include <chrono>
#include <cstdio>
#include <string>

#include "hsis/environment.hpp"
#include "models/models.hpp"

#include "obs/control.hpp"

using clock_type = std::chrono::steady_clock;

namespace {

struct Case {
  const char* design;
  const char* patchFrom;  // seeded bug: substring replaced in the Verilog
  const char* patchTo;
  const char* property;   // failing invariant
};

const Case kCases[] = {
    // gigamax: owners are no longer demoted on foreign read_shared, so an
    // owner and a sharer can coexist
    {"gigamax", "if (st == owned) st <= shared;   // supply data, demote",
     "st <= st;",
     "AG ((p0.st=owned -> (p1.st=invalid & p2.st=invalid)) & "
     "(p1.st=owned -> (p0.st=invalid & p2.st=invalid)) & "
     "(p2.st=owned -> (p0.st=invalid & p1.st=invalid)))"},
    // dcnew: grants ignore the busy bus
    {"dcnew", "assign g1 = busfree && r1 && !r0;", "assign g1 = r1;",
     "AG (!(ch0.st=transfer & ch1.st=transfer) & !(ch1.st=transfer & "
     "ch2.st=transfer) & !(ch0.st=transfer & ch2.st=transfer))"},
    // scheduler: cell 3 spuriously re-creates the token
    {"scheduler", "cell c3(s2, s3, b3);",
     "cell #(.HASTOKEN(1)) c3(s2, s3, b3);",
     "AG !(c0.token=1 & c3.token=1)"},
    // 2mdlc: the receiver stops checking the checksum on link 0
    {"2mdlc", "assign rok = ch_valid && (rx_crc == ch_crc);",
     "assign rok = ch_valid;", "AG (l0.err=0 & l1.err=0)"},
};

}  // namespace

int main(int argc, char** argv) {
  hsis::obs::initDriverObs(argc, argv, {.driverName = "bench_efd"});
  return hsis::obs::driverGuard([&] {
  std::printf("Early failure detection on seeded bugs (invariants FAIL)\n");
  std::printf("%-10s %12s %12s %14s %14s\n", "design", "efd steps",
              "full steps", "efd time(s)", "full time(s)");

  for (const Case& c : kCases) {
    std::string verilog(hsis::models::find(c.design)->verilog);
    size_t pos = verilog.find(c.patchFrom);
    if (pos == std::string::npos) {
      std::printf("%-10s  (patch site not found!)\n", c.design);
      continue;
    }
    verilog.replace(pos, std::string(c.patchFrom).size(), c.patchTo);

    size_t steps[2] = {0, 0};
    double times[2] = {0, 0};
    bool holds[2] = {true, true};
    for (int efd = 1; efd >= 0; --efd) {
      hsis::Environment::Options opts;
      opts.earlyFailureDetection = efd != 0;
      opts.wantTraces = false;
      hsis::Environment env(opts);
      env.readVerilog(verilog);
      env.build();
      auto t0 = clock_type::now();
      hsis::BugReport r = env.verifyCtl("seeded", hsis::parseCtl(c.property));
      times[efd] = std::chrono::duration<double>(clock_type::now() - t0).count();
      steps[efd] = env.checker().lastStats().reachabilitySteps;
      holds[efd] = r.holds;
    }
    std::printf("%-10s %12zu %12zu %14.3f %14.3f%s\n", c.design, steps[1],
                steps[0], times[1], times[0],
                (holds[0] || holds[1]) ? "  (expected FAIL!)" : "");
  }
  std::printf(
      "\n(EFD stops reachability at the first frontier containing a\n"
      " violation; the full run explores the complete reachable set first)\n");
  return 0;
  });
}
