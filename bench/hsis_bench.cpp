// hsis_bench: the unified benchmark runner. Subsumes the per-experiment
// drivers (bench_table1, bench_reach, ...) behind a declarative scenario
// table, runs each case warmup+repeat times with a clean metrics registry,
// and writes a BENCH_<suite>.json baseline (schema hsis-bench-v1, see
// bench_schema.hpp) that perf_compare can diff against a later run.
//
//   hsis_bench --list
//   hsis_bench --suite table1 --repeat 3 --stats-json out/
//   hsis_bench --suite reach --filter gigamax --heartbeat 500 --timeout-s 60
//
// --stats-json takes either a directory (gets BENCH_<suite>.json inside)
// or an explicit .json path. --trace-out DIR writes one Chrome trace
// (phase spans plus profiler counter tracks) per case as
// TRACE_<case>.json, mirroring how --stats-json names baselines. The
// shared obs flags (--heartbeat, --timeout-s, --mem-limit-mb, --profile)
// work like in every other driver; a watchdog abort stops the suite but
// the baseline written so far is still valid, with the aborted case
// marked, and the exit code is 3.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <thread>

#include "bench_schema.hpp"
#include "hsis/environment.hpp"
#include "hsis/session.hpp"
#include "minimize/bisim.hpp"
#include "models/models.hpp"
#include "obs/control.hpp"
#include "obs/version.hpp"
#include "par/batch.hpp"
#include "par/fj.hpp"
#include "vl2mv/vl2mv.hpp"

namespace {

struct Case {
  std::string name;
  std::function<void()> body;
};

// ------------------------------------------------------------ case bodies

void verifyModel(const hsis::models::ModelDef& model) {
  // Runs on hsis::Session directly — the same load/build/check path an
  // hsis_serve worker takes, so these numbers transfer to the service.
  hsis::Session session;
  hsis::Session::DesignSource src;
  src.kind = hsis::Session::DesignSource::Kind::Verilog;
  src.text = std::string(model.verilog);
  src.top = std::string(model.top);
  session.load(src);
  session.build();
  hsis::PifFile pif = hsis::parsePif(std::string(model.pif));
  session.setFairness(pif.fairness);
  (void)session.reachedStates();
  for (const hsis::PifProperty& p : pif.properties) (void)session.check(p);
}

/// Compiled+flattened design shared across the repeats of a case so the
/// measured body is the BDD work, not the parser.
using FlatPtr = std::shared_ptr<const hsis::blifmv::Model>;

FlatPtr flatten(const hsis::models::ModelDef& model) {
  auto design = hsis::vl2mv::compile(std::string(model.verilog),
                                     std::string(model.top));
  return std::make_shared<hsis::blifmv::Model>(hsis::blifmv::flatten(design));
}

hsis::Bdd randomFunction(hsis::BddManager& m, std::mt19937& rng, uint32_t vars,
                         int cubes) {
  hsis::Bdd f = m.bddZero();
  for (int k = 0; k < cubes; ++k) {
    hsis::Bdd cube = m.bddOne();
    for (hsis::BddVar v = 0; v < vars; ++v) {
      switch (rng() % 3) {
        case 0: cube &= m.bddVar(v); break;
        case 1: cube &= !m.bddVar(v); break;
        default: break;
      }
    }
    f |= cube;
  }
  return f;
}

// --------------------------------------------------------------- the table

std::vector<Case> makeSuite(const std::string& suite, int maxThreads = 4) {
  std::vector<Case> cases;
  auto add = [&](std::string name, std::function<void()> body) {
    cases.push_back({std::move(name), std::move(body)});
  };

  if (suite == "smoke") {
    // The fast end-to-end pass CI runs on every push: two toy designs
    // through the full pipeline plus one BDD micro.
    for (const char* name : {"philos", "pingpong"}) {
      const auto* model = hsis::models::find(name);
      add(std::string("smoke/") + name, [model] { verifyModel(*model); });
    }
    add("smoke/bdd-ite", [] {
      hsis::BddManager m(24);
      std::mt19937 rng(1);
      hsis::Bdd f = randomFunction(m, rng, 24, 32);
      hsis::Bdd g = randomFunction(m, rng, 24, 32);
      hsis::Bdd h = randomFunction(m, rng, 24, 32);
      for (int i = 0; i < 16; ++i) {
        (void)m.ite(f, g, h);
        m.clearCaches();
      }
    });
  } else if (suite == "table1") {
    // The paper's Table 1: every bundled design through read + build +
    // reachability + all of its PIF properties.
    for (const auto& model : hsis::models::all()) {
      add(std::string("table1/") + std::string(model.name),
          [&model] { verifyModel(model); });
    }
  } else if (suite == "reach") {
    // Monolithic vs partitioned transition relations (bench_reach).
    for (const char* name : {"philos", "pingpong", "gigamax"}) {
      const auto* model = hsis::models::find(name);
      FlatPtr flat = flatten(*model);
      struct Config {
        const char* label;
        bool partitioned;
        size_t limit;
      };
      for (const Config& cfg : {Config{"monolithic", false, 0},
                                Config{"part-5000", true, 5000},
                                Config{"part-500", true, 500}}) {
        add(std::string("reach/") + name + "/" + cfg.label, [flat, cfg] {
          hsis::BddManager mgr;
          hsis::Fsm fsm(mgr, *flat);
          auto tr = cfg.partitioned
                        ? hsis::TransitionRelation::partitioned(fsm, cfg.limit)
                        : hsis::TransitionRelation::monolithic(fsm);
          auto rr = hsis::reachableStates(tr, fsm.initialStates());
          (void)tr.preimage(rr.reached);
        });
      }
    }
  } else if (suite == "quantify") {
    // Early-quantification planners on the monolithic product.
    for (const char* name : {"philos", "pingpong", "gigamax"}) {
      const auto* model = hsis::models::find(name);
      FlatPtr flat = flatten(*model);
      for (hsis::QuantMethod method :
           {hsis::QuantMethod::Greedy, hsis::QuantMethod::Tree}) {
        add(std::string("quantify/") + name + "/" + toString(method),
            [flat, method] {
              hsis::BddManager mgr;
              hsis::Fsm fsm(mgr, *flat);
              (void)hsis::TransitionRelation::monolithic(fsm, method);
            });
      }
    }
  } else if (suite == "efd") {
    // Early failure detection on a seeded gigamax bug (bench_efd).
    std::string verilog(hsis::models::find("gigamax")->verilog);
    const char* from = "if (st == owned) st <= shared;   // supply data, demote";
    size_t pos = verilog.find(from);
    if (pos != std::string::npos)
      verilog.replace(pos, std::strlen(from), "st <= st;");
    const char* property =
        "AG ((p0.st=owned -> (p1.st=invalid & p2.st=invalid)) & "
        "(p1.st=owned -> (p0.st=invalid & p2.st=invalid)) & "
        "(p2.st=owned -> (p0.st=invalid & p1.st=invalid)))";
    for (bool efd : {true, false}) {
      add(std::string("efd/gigamax/") + (efd ? "efd-on" : "efd-off"),
          [verilog, property, efd] {
            hsis::Environment::Options opts;
            opts.earlyFailureDetection = efd;
            opts.wantTraces = false;
            hsis::Environment env(opts);
            env.readVerilog(verilog);
            env.build();
            (void)env.verifyCtl("seeded", hsis::parseCtl(property));
          });
    }
  } else if (suite == "dontcare") {
    // Restrict-minimized transition relations plus a bisimulation pass.
    for (const char* name : {"pingpong", "philos", "gigamax"}) {
      const auto* model = hsis::models::find(name);
      FlatPtr flat = flatten(*model);
      add(std::string("dontcare/") + name + "/minimize", [flat] {
        hsis::BddManager mgr;
        hsis::Fsm fsm(mgr, *flat);
        auto tr = hsis::TransitionRelation::partitioned(fsm);
        auto rr = hsis::reachableStates(tr, fsm.initialStates());
        (void)tr.minimized(rr.reached);
      });
      add(std::string("dontcare/") + name + "/bisim", [flat] {
        hsis::BddManager mgr;
        hsis::Fsm fsm(mgr, *flat);
        auto tr = hsis::TransitionRelation::monolithic(fsm);
        auto rr = hsis::reachableStates(tr, fsm.initialStates());
        std::vector<hsis::Bdd> obs{fsm.space().literal(fsm.stateVar(0), 0)};
        (void)hsis::bisimulation(fsm, tr, obs, rr.reached);
      });
    }
  } else if (suite == "lc_vs_mc") {
    // The matched pingpong invariance pair from bench_lc_vs_mc.
    const char* ctl = R"PIF(ctl p "AG !(ball=ping_side & ball=pong_side)";)PIF";
    const char* automaton =
        R"PIF(automaton p { state ok init; state bad;
          edge ok -> ok on "!(ping_has & pong_has)";
          edge ok -> bad on "ping_has & pong_has";
          edge bad -> bad on "1"; accept stay ok; })PIF";
    const auto* model = hsis::models::find("pingpong");
    for (bool mc : {true, false}) {
      std::string prop = mc ? ctl : automaton;
      add(std::string("lc_vs_mc/pingpong/") + (mc ? "mc" : "lc"),
          [model, prop] {
            hsis::Environment env;
            env.readVerilog(std::string(model->verilog),
                            std::string(model->top));
            env.build();
            (void)env.reachedStates();
            hsis::PifFile pif = hsis::parsePif(prop);
            (void)env.verify(pif.properties.at(0));
          });
    }
  } else if (suite == "bdd") {
    // BDD package micros (a subset of bench_bdd, without google-benchmark).
    for (uint32_t nv : {16u, 32u}) {
      add("bdd/ite/" + std::to_string(nv), [nv] {
        hsis::BddManager m(nv);
        std::mt19937 rng(1);
        hsis::Bdd f = randomFunction(m, rng, nv, 32);
        hsis::Bdd g = randomFunction(m, rng, nv, 32);
        hsis::Bdd h = randomFunction(m, rng, nv, 32);
        for (int i = 0; i < 32; ++i) {
          (void)m.ite(f, g, h);
          m.clearCaches();
        }
      });
      add("bdd/and-exists/" + std::to_string(nv), [nv] {
        hsis::BddManager m(nv);
        std::mt19937 rng(2);
        hsis::Bdd f = randomFunction(m, rng, nv, 32);
        hsis::Bdd g = randomFunction(m, rng, nv, 32);
        hsis::Bdd cube = m.bddOne();
        for (hsis::BddVar v = 0; v < nv; v += 2) cube &= m.bddVar(v);
        for (int i = 0; i < 32; ++i) {
          (void)m.andExists(f, g, cube);
          m.clearCaches();
        }
      });
      add("bdd/not/" + std::to_string(nv), [nv] {
        // With complement edges negation is a bit flip: this case should
        // stay flat no matter how big the operand gets.
        hsis::BddManager m(nv);
        std::mt19937 rng(3);
        hsis::Bdd f = randomFunction(m, rng, nv, 32);
        for (int i = 0; i < 4096; ++i) f = !f;
      });
    }
  } else if (suite == "parallel") {
    // The multi-core engine, both grains, swept over a thread count list
    // (1, 2, 4, ... up to --threads). t1/j1 rows are the serial anchors a
    // sweep is read against.
    std::vector<int> ks{1};
    for (int k = 2; k <= maxThreads; k *= 2) ks.push_back(k);
    if (ks.back() != maxThreads) ks.push_back(maxThreads);

    // Coarse grain: the property batch of one design fanned out onto k
    // replica-owning workers (exactly hsis_cli --jobs k).
    for (const char* name : {"philos", "gigamax"}) {
      const auto* model = hsis::models::find(name);
      for (int k : ks) {
        add("parallel/batch/" + std::string(name) + "/j" + std::to_string(k),
            [model, k] {
              hsis::Session session;
              hsis::Session::DesignSource src;
              src.kind = hsis::Session::DesignSource::Kind::Verilog;
              src.text = std::string(model->verilog);
              src.top = std::string(model->top);
              session.load(src);
              session.build();
              hsis::PifFile pif = hsis::parsePif(std::string(model->pif));
              session.setFairness(pif.fairness);
              (void)hsis::par::checkBatch(session, pif.properties,
                                          {.jobs = k});
            });
      }
    }

    // Fine grain, shared table: k threads hammer one manager concurrently
    // (lock-free unique-table inserts, per-thread caches).
    for (int k : ks) {
      add("parallel/shared-apply/t" + std::to_string(k), [k] {
        hsis::BddManager m(24);
        std::mt19937 rng(7);
        std::vector<hsis::Bdd> fs, gs;
        for (int i = 0; i < 8; ++i) {
          fs.push_back(randomFunction(m, rng, 24, 24));
          gs.push_back(randomFunction(m, rng, 24, 24));
        }
        hsis::Bdd cube = m.bddOne();
        for (hsis::BddVar v = 0; v < 24; v += 2) cube &= m.bddVar(v);
        m.beginShared();
        std::vector<std::thread> threads;
        for (int t = 0; t < k; ++t) {
          threads.emplace_back([&, t] {
            for (int i = 0; i < 16; ++i)
              (void)m.andExists(fs[(t + i) % 8], gs[(t * 3 + i) % 8], cube);
          });
        }
        for (auto& th : threads) th.join();
        m.endShared();
      });
    }

    // Fine grain, fork-join apply: one big ite split on cofactor
    // subproblems across k threads total (caller + k-1 pool workers).
    for (int k : ks) {
      add("parallel/fj-ite/t" + std::to_string(k), [k] {
        hsis::BddManager m(32);
        std::mt19937 rng(5);
        hsis::Bdd f = randomFunction(m, rng, 32, 48);
        hsis::Bdd g = randomFunction(m, rng, 32, 48);
        hsis::Bdd h = randomFunction(m, rng, 32, 48);
        hsis::par::ForkJoin fj(k - 1);
        m.beginShared();
        m.setParallel(&fj, 512, 4);
        for (int i = 0; i < 8; ++i) {
          (void)m.ite(f, g, h);
          m.clearCaches();
        }
        m.setParallel(nullptr);
        m.endShared();
      });
    }
  }
  return cases;
}

const char* const kSuites[] = {"smoke",    "table1",   "reach",
                               "quantify", "efd",      "dontcare",
                               "lc_vs_mc", "bdd",      "parallel"};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--suite NAME] [--repeat N] [--warmup N] [--filter SUBSTR]\n"
      "          [--threads N] [--stats-json DIR-or-FILE.json]\n"
      "          [--trace-out DIR] [--list]\n"
      "          [--heartbeat MS] [--heartbeat-file F] [--timeout-s S]\n"
      "          [--mem-limit-mb M] [--profile] [--profile-out BASE]\n"
      "          [--profile-interval-ms N] [--log-level LVL] [--log-file F]\n"
      "          [--ledger PATH] [--flight-dir DIR]\n"
      "suites: smoke table1 reach quantify efd dontcare lc_vs_mc bdd "
      "parallel\n"
      "--threads caps the parallel suite's thread sweep (default 4)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (hsis::obs::handleVersionFlag(argc, argv, "hsis_bench")) return 0;
  // hsis_bench owns --stats-json (it means the BENCH baseline, not a bare
  // obs snapshot) and its own ledger records (one per case, not one per
  // process).
  hsis::obs::ObsCliOptions obsOpts = hsis::obs::initDriverObs(
      argc, argv,
      {.driverName = "hsis_bench", .ownStatsJson = true, .ownLedger = true});

  std::string suite = "smoke";
  std::string filter;
  std::string traceOut;
  int repeat = 3;
  int warmup = 1;
  int threads = 4;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--suite") suite = value();
    else if (arg == "--repeat") repeat = std::atoi(value());
    else if (arg == "--warmup") warmup = std::atoi(value());
    else if (arg == "--filter") filter = value();
    else if (arg == "--threads") threads = std::atoi(value());
    else if (arg == "--trace-out") traceOut = value();
    else if (arg == "--list") list = true;
    else return usage(argv[0]);
  }
  if (repeat < 1) repeat = 1;
  if (warmup < 0) warmup = 0;
  if (threads < 1) threads = 1;

  if (list) {
    for (const char* s : kSuites) {
      std::printf("%s\n", s);
      for (const Case& c : makeSuite(s, threads))
        std::printf("  %s\n", c.name.c_str());
    }
    return 0;
  }

  bool known = false;
  for (const char* s : kSuites) known |= suite == s;
  if (!known) {
    std::fprintf(stderr, "unknown suite '%s'\n", suite.c_str());
    return usage(argv[0]);
  }

  std::vector<Case> cases = makeSuite(suite, threads);
  if (!filter.empty()) {
    std::erase_if(cases, [&](const Case& c) {
      return c.name.find(filter) == std::string::npos;
    });
  }
  if (cases.empty()) {
    std::fprintf(stderr, "no cases match\n");
    return 2;
  }

  hsisbench::BenchDoc doc;
  doc.suite = suite;
  doc.gitSha = hsisbench::gitSha();
  doc.repeat = repeat;
  doc.warmup = warmup;

  bool aborted = false;
  std::printf("suite %s: %zu cases, repeat=%d warmup=%d%s\n", suite.c_str(),
              cases.size(), repeat, warmup,
              hsis::obs::kEnabled ? "" : " (obs disabled)");
  const std::string ledgerPath = hsis::obs::activeLedgerPath();
  for (const Case& c : cases) {
    std::printf("%-40s ", c.name.c_str());
    std::fflush(stdout);
    hsisbench::CaseResult result =
        hsisbench::runCase(c.name, c.body, repeat, warmup);
    if (result.anyAborted()) {
      const hsisbench::RunStats& last = result.runs.back();
      std::printf("ABORTED (%s)\n", last.abortReason.c_str());
      aborted = true;
    } else {
      std::printf("%10.3f ms (min of %zu)\n", result.wallMsMin(),
                  result.runs.size());
    }
    if (!ledgerPath.empty()) {
      // One ledger record per case: the per-case min wall time and peak RSS
      // are what hsis_report diffs across runs/commits.
      hsis::obs::ledger::Record rec = hsis::obs::baseLedgerRecord();
      rec.subject = c.name;
      if (result.anyAborted()) {
        rec.result = "aborted";
        rec.detail = result.runs.empty() ? std::string("no runs")
                                         : result.runs.back().abortReason;
      } else {
        rec.result = "completed";
      }
      rec.wallSeconds = result.wallMsMin() * 1e-3;
      rec.peakRssKb = result.peakRssKbMin();
      hsis::obs::ledger::append(ledgerPath, rec);
    }
    doc.cases.push_back(std::move(result));
    if (!traceOut.empty()) {
      // runCase resets the tracer before each measured run, so the
      // snapshot here holds exactly the last run of this case.
      namespace fs = std::filesystem;
      fs::create_directories(traceOut);
      std::string fname = c.name;
      std::replace(fname.begin(), fname.end(), '/', '_');
      fs::path file = fs::path(traceOut) / ("TRACE_" + fname + ".json");
      std::ofstream f(file);
      if (!f) {
        std::fprintf(stderr, "cannot write %s\n", file.c_str());
        return 2;
      }
      f << hsis::obs::toChromeTrace(hsis::obs::snapshot());
    }
    // A watchdog breach is a whole-process condition: running the
    // remaining cases would only re-trip it, so stop here. The baseline
    // written below is still schema-valid with this case marked aborted.
    if (aborted) break;
  }

  if (!obsOpts.statsJsonPath.empty()) {
    namespace fs = std::filesystem;
    fs::path out(obsOpts.statsJsonPath);
    bool isDir = out.extension() != ".json";
    fs::path file = isDir ? out / ("BENCH_" + suite + ".json") : out;
    if (file.has_parent_path())
      fs::create_directories(file.parent_path());
    std::ofstream f(file);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", file.c_str());
      return 2;
    }
    f << hsisbench::toJson(doc);
    std::printf("wrote %s\n", file.c_str());
  }
  return aborted ? 3 : 0;
}
