// Ablation: monolithic vs partitioned transition relations for
// reachability and for backward (preimage) computation — the paper's
// future-work item 4, "compute the reached state-set without forming the
// product machine".
#include <chrono>
#include <cstdio>
#include <string>

#include "hsis/environment.hpp"
#include "models/models.hpp"
#include "vl2mv/vl2mv.hpp"

#include "obs/control.hpp"

using clock_type = std::chrono::steady_clock;

static double seconds(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

int main(int argc, char** argv) {
  hsis::obs::initDriverObs(argc, argv, {.driverName = "bench_reach"});
  return hsis::obs::driverGuard([&] {
  std::printf("Reachability: monolithic vs partitioned transition relation\n");
  std::printf("%-10s %-12s %8s %10s %10s %10s %10s\n", "design", "form",
              "clusters", "tr nodes", "build(s)", "reach(s)", "pre(s)");

  for (const auto& model : hsis::models::all()) {
    auto design = hsis::vl2mv::compile(std::string(model.verilog),
                                       std::string(model.top));
    auto flat = hsis::blifmv::flatten(design);

    struct Config {
      const char* label;
      bool partitioned;
      size_t limit;
    };
    const Config configs[] = {
        {"monolithic", false, 0},
        {"part-5000", true, 5000},
        {"part-500", true, 500},
    };
    for (const Config& cfg : configs) {
      hsis::obs::Span span(std::string("bench.reach/") +
                           std::string(model.name) + "/" + cfg.label);
      hsis::BddManager mgr;
      hsis::Fsm fsm(mgr, flat);
      auto t0 = clock_type::now();
      auto tr = cfg.partitioned
                    ? hsis::TransitionRelation::partitioned(fsm, cfg.limit)
                    : hsis::TransitionRelation::monolithic(fsm);
      double buildS = seconds(t0);

      t0 = clock_type::now();
      auto rr = hsis::reachableStates(tr, fsm.initialStates());
      double reachS = seconds(t0);

      t0 = clock_type::now();
      hsis::Bdd pre = tr.preimage(rr.reached);
      double preS = seconds(t0);
      (void)pre;

      std::printf("%-10s %-12s %8zu %10zu %10.3f %10.3f %10.3f\n",
                  std::string(model.name).c_str(), cfg.label,
                  tr.clusterCount(), tr.totalNodes(), buildS, reachS, preS);
    }
  }
  return 0;
  });
}
