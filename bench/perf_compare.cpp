// perf_compare: diff two BENCH_*.json baselines (written by hsis_bench)
// and fail past a regression threshold.
//
//   perf_compare BENCH_old.json BENCH_new.json --threshold 10
//   perf_compare BENCH_old.json BENCH_new.json --mem-threshold 20
//   perf_compare BENCH_old.json BENCH_new.json --report-only
//   perf_compare BENCH_old.json BENCH_new.json --noise-pct 15
//
// The wall statistic is the per-case MINIMUM wall time; a case regresses
// when new/old exceeds 1 + threshold% (default 10). With --mem-threshold
// the per-case minimum peak RSS is diffed the same way (off by default:
// RSS is a process-wide high-water mark, so only the first case of a
// process carries a clean signal — hsis_bench runs cases in-process in
// suite order, which keeps the comparison like-for-like across runs).
// --noise-pct P grants each case extra slack equal to its own measured
// within-run spread (max/min across repeats, larger of the two sides),
// capped at P points — the threaded `parallel` suite scatters with
// scheduler jitter, and this keeps the serial micros strict while not
// flagging jitter as a regression. Aborted cases and cases present on
// only one side are listed but never fail the comparison.
//
// Exit codes: 0 ok / 1 regression (suppressed by --report-only) / 2 usage
// or I/O or parse error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_schema.hpp"
#include "obs/version.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: perf_compare OLD.json NEW.json [--threshold PCT] "
               "[--mem-threshold PCT] [--noise-pct PCT] [--report-only]\n");
  return 2;
}

bool readFile(const char* path, std::string& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (hsis::obs::handleVersionFlag(argc, argv, "perf_compare")) return 0;
  const char* oldPath = nullptr;
  const char* newPath = nullptr;
  double threshold = 10.0;
  double memThreshold = 0.0;
  double noisePct = 0.0;
  bool reportOnly = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0) {
      if (i + 1 >= argc) return usage();
      threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--mem-threshold") == 0) {
      if (i + 1 >= argc) return usage();
      memThreshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--noise-pct") == 0) {
      if (i + 1 >= argc) return usage();
      noisePct = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--report-only") == 0) {
      reportOnly = true;
    } else if (!oldPath) {
      oldPath = argv[i];
    } else if (!newPath) {
      newPath = argv[i];
    } else {
      return usage();
    }
  }
  if (!oldPath || !newPath) return usage();

  std::string oldText, newText;
  if (!readFile(oldPath, oldText)) {
    std::fprintf(stderr, "perf_compare: cannot read %s\n", oldPath);
    return 2;
  }
  if (!readFile(newPath, newText)) {
    std::fprintf(stderr, "perf_compare: cannot read %s\n", newPath);
    return 2;
  }

  hsisbench::BenchDoc oldDoc, newDoc;
  try {
    oldDoc = hsisbench::parseBenchJson(oldText);
    newDoc = hsisbench::parseBenchJson(newText);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_compare: %s\n", e.what());
    return 2;
  }

  if (oldDoc.obsEnabled != newDoc.obsEnabled) {
    std::printf(
        "note: comparing an obs-enabled build against an obs-disabled one; "
        "absolute times are not like-for-like\n");
  }
  char memBuf[32] = "off";
  if (memThreshold > 0.0)
    std::snprintf(memBuf, sizeof memBuf, "%.1f%%", memThreshold);
  char noiseBuf[32] = "off";
  if (noisePct > 0.0)
    std::snprintf(noiseBuf, sizeof noiseBuf, "%.1f%%", noisePct);
  std::printf("old: suite=%s sha=%s   new: suite=%s sha=%s   "
              "threshold=%.1f%% mem-threshold=%s noise-cap=%s\n",
              oldDoc.suite.c_str(), oldDoc.gitSha.c_str(),
              newDoc.suite.c_str(), newDoc.gitSha.c_str(), threshold,
              memBuf, noiseBuf);
  std::printf("%-40s %11s %11s %7s %11s %11s %7s\n", "case", "old(ms)",
              "new(ms)", "wall", "old-rss(K)", "new-rss(K)", "rss");

  hsisbench::CompareResult cmp = hsisbench::compareBench(
      oldDoc, newDoc, threshold, memThreshold, noisePct);
  for (const hsisbench::CompareRow& row : cmp.rows) {
    if (!row.note.empty()) {
      std::printf("%-40s %34s\n", row.name.c_str(),
                  ("(" + row.note + ")").c_str());
      continue;
    }
    std::string flags;
    if (row.noisePct > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "  (noise %.1f%%)", row.noisePct);
      flags += buf;
    }
    if (row.regression) flags += "  WALL-REGRESSION";
    if (row.memRegression) flags += "  RSS-REGRESSION";
    std::printf("%-40s %11.3f %11.3f %6.2fx %11llu %11llu %6.2fx%s\n",
                row.name.c_str(), row.oldMs, row.newMs, row.ratio,
                static_cast<unsigned long long>(row.oldRssKb),
                static_cast<unsigned long long>(row.newRssKb), row.rssRatio,
                flags.c_str());
  }
  if (cmp.regressions + cmp.memRegressions > 0) {
    std::printf("%d wall regression(s) past %.1f%%, %d rss regression(s)\n",
                cmp.regressions, threshold, cmp.memRegressions);
    return reportOnly ? 0 : 1;
  }
  std::printf("no regressions\n");
  return 0;
}
