// perf_compare: diff two BENCH_*.json baselines (written by hsis_bench)
// and fail past a regression threshold.
//
//   perf_compare BENCH_old.json BENCH_new.json --threshold 10
//   perf_compare BENCH_old.json BENCH_new.json --report-only
//
// The statistic is the per-case MINIMUM wall time; a case regresses when
// new/old exceeds 1 + threshold% (default 10). Aborted cases and cases
// present on only one side are listed but never fail the comparison.
//
// Exit codes: 0 ok / 1 regression (suppressed by --report-only) / 2 usage
// or I/O or parse error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_schema.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: perf_compare OLD.json NEW.json [--threshold PCT] "
               "[--report-only]\n");
  return 2;
}

bool readFile(const char* path, std::string& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const char* oldPath = nullptr;
  const char* newPath = nullptr;
  double threshold = 10.0;
  bool reportOnly = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0) {
      if (i + 1 >= argc) return usage();
      threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--report-only") == 0) {
      reportOnly = true;
    } else if (!oldPath) {
      oldPath = argv[i];
    } else if (!newPath) {
      newPath = argv[i];
    } else {
      return usage();
    }
  }
  if (!oldPath || !newPath) return usage();

  std::string oldText, newText;
  if (!readFile(oldPath, oldText)) {
    std::fprintf(stderr, "perf_compare: cannot read %s\n", oldPath);
    return 2;
  }
  if (!readFile(newPath, newText)) {
    std::fprintf(stderr, "perf_compare: cannot read %s\n", newPath);
    return 2;
  }

  hsisbench::BenchDoc oldDoc, newDoc;
  try {
    oldDoc = hsisbench::parseBenchJson(oldText);
    newDoc = hsisbench::parseBenchJson(newText);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_compare: %s\n", e.what());
    return 2;
  }

  if (oldDoc.obsEnabled != newDoc.obsEnabled) {
    std::printf(
        "note: comparing an obs-enabled build against an obs-disabled one; "
        "absolute times are not like-for-like\n");
  }
  std::printf("old: suite=%s sha=%s   new: suite=%s sha=%s   threshold=%.1f%%\n",
              oldDoc.suite.c_str(), oldDoc.gitSha.c_str(),
              newDoc.suite.c_str(), newDoc.gitSha.c_str(), threshold);
  std::printf("%-40s %12s %12s %8s\n", "case", "old(ms)", "new(ms)", "ratio");

  hsisbench::CompareResult cmp =
      hsisbench::compareBench(oldDoc, newDoc, threshold);
  for (const hsisbench::CompareRow& row : cmp.rows) {
    if (!row.note.empty()) {
      std::printf("%-40s %34s\n", row.name.c_str(),
                  ("(" + row.note + ")").c_str());
      continue;
    }
    std::printf("%-40s %12.3f %12.3f %7.2fx%s\n", row.name.c_str(), row.oldMs,
                row.newMs, row.ratio, row.regression ? "  REGRESSION" : "");
  }
  if (cmp.regressions > 0) {
    std::printf("%d case(s) regressed past %.1f%%\n", cmp.regressions,
                threshold);
    return reportOnly ? 0 : 1;
  }
  std::printf("no regressions\n");
  return 0;
}
