// Don't cares (paper Section 2, item 3): "don't care information can be
// used to substantially improve the performance of algorithms by
// minimizing the BDDs in intermediate computations... one source of don't
// cares comes from state equivalences, such as bisimulation."
//
// Two measurements per design:
//  1. reachability don't cares: transition-relation size before/after
//     restrict-minimization by the reachable set, and the MC time with the
//     don't-care machinery on/off;
//  2. bisimulation equivalences: number of classes vs states, and the BDD
//     size of a class-closed set before/after shrinking to representatives.
#include <chrono>
#include <cstdio>
#include <string>

#include "hsis/environment.hpp"
#include "minimize/bisim.hpp"
#include "models/models.hpp"
#include "vl2mv/vl2mv.hpp"

#include "obs/control.hpp"

using clock_type = std::chrono::steady_clock;

int main(int argc, char** argv) {
  hsis::obs::initDriverObs(argc, argv, {.driverName = "bench_dontcare"});
  return hsis::obs::driverGuard([&] {
  std::printf("Reachability don't cares: restrict-minimized transition relations\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "design", "tr nodes",
              "minimized", "mc+dc(s)", "mc-dc(s)");
  for (const auto& model : hsis::models::all()) {
    auto design = hsis::vl2mv::compile(std::string(model.verilog),
                                       std::string(model.top));
    auto flat = hsis::blifmv::flatten(design);
    hsis::BddManager mgr;
    hsis::Fsm fsm(mgr, flat);
    auto tr = hsis::TransitionRelation::partitioned(fsm);
    auto rr = hsis::reachableStates(tr, fsm.initialStates());
    auto trMin = tr.minimized(rr.reached);

    // time a liveness-ish formula with and without don't cares
    const char* formula = "AG EF ";
    std::string f = std::string(formula) + fsm.latchName(0) + "=" +
                    fsm.space().valueName(fsm.stateVar(0), 0);
    double times[2];
    for (int dc = 0; dc < 2; ++dc) {
      hsis::McOptions opts;
      opts.useReachedDontCares = dc == 1;
      opts.wantTrace = false;
      hsis::CtlChecker mc(fsm, tr, {}, opts);
      auto t0 = clock_type::now();
      (void)mc.check(hsis::parseCtl(f));
      times[dc] = std::chrono::duration<double>(clock_type::now() - t0).count();
    }
    std::printf("%-10s %12zu %12zu %12.3f %12.3f\n",
                std::string(model.name).c_str(), tr.totalNodes(),
                trMin.totalNodes(), times[1], times[0]);
  }

  std::printf("\nBisimulation equivalences as don't cares\n");
  std::printf("%-10s %14s %14s %12s %12s\n", "design", "states", "classes",
              "set nodes", "shrunk");
  for (const char* name : {"pingpong", "philos", "gigamax", "dcnew"}) {
    const auto* model = hsis::models::find(name);
    auto design = hsis::vl2mv::compile(std::string(model->verilog),
                                       std::string(model->top));
    auto flat = hsis::blifmv::flatten(design);
    hsis::BddManager mgr;
    hsis::Fsm fsm(mgr, flat);
    auto tr = hsis::TransitionRelation::monolithic(fsm);
    auto rr = hsis::reachableStates(tr, fsm.initialStates());

    // observation: the first latch's zero-value (a typical property atom)
    std::vector<hsis::Bdd> obs{fsm.space().literal(fsm.stateVar(0), 0)};
    hsis::BisimResult bisim = hsis::bisimulation(fsm, tr, obs, rr.reached);

    // shrink the observation set restricted to reached (class-closed)
    hsis::Bdd set = obs[0] & rr.reached;
    hsis::Bdd shrunk = shrinkToRepresentatives(fsm, bisim, set);
    std::printf("%-10s %14.0f %14.0f %12zu %12zu\n", name,
                fsm.countStates(rr.reached), bisim.classCount,
                set.nodeCount(), shrunk.nodeCount());
  }
  return 0;
  });
}
