// Microbenchmarks for the BDD package (google-benchmark): the primitive
// operations every verification algorithm is built from.
#include <benchmark/benchmark.h>

#include <random>

#include "bdd/bdd.hpp"
#include "obs/control.hpp"

namespace {

using hsis::Bdd;
using hsis::BddManager;
using hsis::BddVar;

Bdd randomFunction(BddManager& m, std::mt19937& rng, uint32_t vars,
                   int cubes) {
  Bdd f = m.bddZero();
  for (int k = 0; k < cubes; ++k) {
    Bdd cube = m.bddOne();
    for (BddVar v = 0; v < vars; ++v) {
      switch (rng() % 3) {
        case 0: cube &= m.bddVar(v); break;
        case 1: cube &= !m.bddVar(v); break;
        default: break;
      }
    }
    f |= cube;
  }
  return f;
}

void BM_Ite(benchmark::State& state) {
  BddManager m(static_cast<uint32_t>(state.range(0)));
  std::mt19937 rng(1);
  uint32_t nv = static_cast<uint32_t>(state.range(0));
  Bdd f = randomFunction(m, rng, nv, 32);
  Bdd g = randomFunction(m, rng, nv, 32);
  Bdd h = randomFunction(m, rng, nv, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.ite(f, g, h));
    m.clearCaches();
  }
}
BENCHMARK(BM_Ite)->Arg(16)->Arg(32)->Arg(64);

void BM_AndExists(benchmark::State& state) {
  BddManager m(static_cast<uint32_t>(state.range(0)));
  std::mt19937 rng(2);
  uint32_t nv = static_cast<uint32_t>(state.range(0));
  Bdd f = randomFunction(m, rng, nv, 32);
  Bdd g = randomFunction(m, rng, nv, 32);
  Bdd cube = m.bddOne();
  for (BddVar v = 0; v < nv; v += 2) cube &= m.bddVar(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.andExists(f, g, cube));
    m.clearCaches();
  }
}
BENCHMARK(BM_AndExists)->Arg(16)->Arg(32)->Arg(64);

void BM_Negate(benchmark::State& state) {
  // O(1) with complement edges: flips the sign bit of the root edge, no
  // apply traversal and no node allocation regardless of operand size.
  uint32_t nv = static_cast<uint32_t>(state.range(0));
  BddManager m(nv);
  std::mt19937 rng(5);
  Bdd f = randomFunction(m, rng, nv, 32);
  for (auto _ : state) {
    f = !f;
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_Negate)->Arg(16)->Arg(64);

void BM_Permute(benchmark::State& state) {
  uint32_t nv = static_cast<uint32_t>(state.range(0));
  BddManager m(nv);
  std::mt19937 rng(3);
  Bdd f = randomFunction(m, rng, nv / 2, 32);  // over the even rail
  std::vector<BddVar> map(nv);
  for (BddVar v = 0; v < nv; ++v) map[v] = v;
  for (BddVar v = 0; v + nv / 2 < nv; ++v) {
    map[v] = v + nv / 2;
    map[v + nv / 2] = v;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.permute(f, map));
    m.clearCaches();
  }
}
BENCHMARK(BM_Permute)->Arg(16)->Arg(32);

void BM_SatCount(benchmark::State& state) {
  uint32_t nv = 24;
  BddManager m(nv);
  std::mt19937 rng(4);
  Bdd f = randomFunction(m, rng, nv, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.satCount(f, nv));
  }
}
BENCHMARK(BM_SatCount)->Arg(16)->Arg(128);

void BM_Sift(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BddManager m(16);
    // adversarial order for the interleaved conjunction
    std::vector<BddVar> badOrder;
    for (BddVar v = 0; v < 16; v += 2) badOrder.push_back(v);
    for (BddVar v = 1; v < 16; v += 2) badOrder.push_back(v);
    m.setOrder(badOrder);
    Bdd f = m.bddZero();
    for (BddVar v = 0; v < 16; v += 2) f |= m.bddVar(v) & m.bddVar(v + 1);
    state.ResumeTiming();
    m.sift();
    benchmark::DoNotOptimize(f.nodeCount());
  }
}
BENCHMARK(BM_Sift);

void BM_GarbageCollection(benchmark::State& state) {
  BddManager m(16);
  std::mt19937 rng(5);
  Bdd keep = randomFunction(m, rng, 16, 64);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 2000; ++i) {
      Bdd junk = randomFunction(m, rng, 16, 4);
      benchmark::DoNotOptimize(junk);
    }
    state.ResumeTiming();
    m.gc();
  }
  benchmark::DoNotOptimize(keep);
}
BENCHMARK(BM_GarbageCollection);

}  // namespace

// Expanded BENCHMARK_MAIN() so the shared obs flags are stripped before
// google-benchmark sees (and rejects) them.
int main(int argc, char** argv) {
  hsis::obs::initDriverObs(argc, argv, {.driverName = "bench_bdd"});
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  return hsis::obs::driverGuard([] {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  });
}
