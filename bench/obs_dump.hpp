// Shared --stats-json handling for the bench drivers: strip the flag from
// argv and, at process exit, dump the full hsis_obs snapshot (metrics
// registry + span tree) to the given file. A second file with a
// `.trace.json` suffix gets the chrome://tracing event view.
//
//   bench_reach --stats-json out.json
//
// This is how BENCH_*.json trajectory entries are produced by the harness
// instead of by hand.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/obs.hpp"

namespace benchobs {

inline std::string& statsPath() {
  static std::string path;
  return path;
}

inline void dumpAtExit() {
  const std::string& path = statsPath();
  if (path.empty()) return;
  hsis::obs::Snapshot snap = hsis::obs::snapshot();
  {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
      return;
    }
    out << hsis::obs::toJson(snap);
  }
  std::ofstream trace(path + ".trace.json");
  if (trace) trace << hsis::obs::toChromeTrace(snap);
}

/// Scan argv for `--stats-json FILE`, remove the pair, and register the
/// exit-time dump. Call first thing in main, before other arg parsing.
inline void install(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-json") == 0 && i + 1 < argc) {
      statsPath() = argv[i + 1];
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      argv[argc] = nullptr;
      std::atexit(dumpAtExit);
      return;
    }
  }
}

}  // namespace benchobs
