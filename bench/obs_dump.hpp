// Shared observability plumbing for the bench drivers: strip the common
// obs flags from argv, start the heartbeat/watchdog as requested and, at
// process exit, dump the full hsis_obs snapshot (metrics registry + span
// tree) to the given file. A second file with a `.trace.json` suffix gets
// the chrome://tracing event view.
//
//   bench_reach --stats-json out.json --heartbeat 500 --timeout-s 60
//
// This is how BENCH_*.json trajectory entries are produced by the harness
// instead of by hand. Wrap the driver body in `benchobs::guard` so a
// watchdog abort unwinds cleanly (stats still written, exit code 3)
// instead of crashing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/control.hpp"
#include "obs/obs.hpp"

namespace benchobs {

inline std::string& statsPath() {
  static std::string path;
  return path;
}

inline void dumpAtExit() {
  const std::string& path = statsPath();
  if (path.empty()) return;
  hsis::obs::Snapshot snap = hsis::obs::snapshot();
  {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
      return;
    }
    out << hsis::obs::toJson(snap);
  }
  std::ofstream trace(path + ".trace.json");
  if (trace) trace << hsis::obs::toChromeTrace(snap);
}

/// Strip the shared obs flags (--stats-json, --heartbeat, --heartbeat-file,
/// --timeout-s, --mem-limit-mb) from argv, start the requested background
/// threads, and register the exit-time dump. Call first thing in main,
/// before other arg parsing.
///
/// atexit runs LIFO: dumpAtExit is registered BEFORE applyObsCliOptions
/// registers stopObsThreads, so the threads are joined before the snapshot
/// is taken.
inline void install(int& argc, char** argv) {
  hsis::obs::ObsCliOptions opts = hsis::obs::stripObsCliFlags(argc, argv);
  statsPath() = opts.statsJsonPath;
  if (!statsPath().empty()) std::atexit(dumpAtExit);
  hsis::obs::applyObsCliOptions(opts);
}

/// Run the driver body; on a watchdog/user abort print what happened and
/// return exit code 3 (the atexit dump still writes a snapshot whose
/// "aborted" field carries the reason and phase).
template <typename Fn>
int guard(Fn&& body) {
  try {
    return body();
  } catch (const hsis::obs::AbortedError& e) {
    std::fflush(stdout);
    std::fprintf(stderr, "\naborted: %s", e.reason().c_str());
    if (!e.phase().empty()) std::fprintf(stderr, " (in %s)", e.phase().c_str());
    std::fprintf(stderr, "\n");
    return 3;
  }
}

}  // namespace benchobs
