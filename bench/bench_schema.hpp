// BENCH_<suite>.json: the on-disk baseline format written by hsis_bench
// and diffed by perf_compare.
//
//   {
//     "schema": "hsis-bench-v1",
//     "suite": "table1",
//     "git_sha": "f318b54",
//     "obs_enabled": true,
//     "config": {"repeat": 3, "warmup": 1},
//     "cases": [
//       {"name": "table1/philos",
//        "runs": [{"wall_ms": 12.3, "user_ms": 11.9, "peak_rss_kb": 5120,
//                  "aborted": null}, ...],
//        "wall_ms_min": 12.3,
//        "obs": { ...hsis-obs-v1 snapshot of the last run... }},
//       ...
//     ]
//   }
//
// perf_compare treats the per-case MINIMUM wall time as the statistic (the
// min is the least noisy estimator of the true cost under scheduler
// interference); a case regresses when newMin > oldMin * (1 + threshold%).
// Aborted or missing cases are reported but never counted as regressions.
#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "obs/control.hpp"
#include "obs/jsonlite.hpp"
#include "obs/obs.hpp"

namespace hsisbench {

struct RunStats {
  double wallMs = 0.0;
  double userMs = 0.0;
  uint64_t peakRssKb = 0;
  bool aborted = false;
  std::string abortReason;
  std::string abortPhase;
};

struct CaseResult {
  std::string name;
  std::vector<RunStats> runs;
  std::string obsJson;  ///< hsis-obs-v1 snapshot of the last measured run

  [[nodiscard]] bool anyAborted() const {
    for (const RunStats& r : runs)
      if (r.aborted) return true;
    return runs.empty();
  }
  [[nodiscard]] double wallMsMin() const {
    double best = 0.0;
    bool first = true;
    for (const RunStats& r : runs) {
      if (r.aborted) continue;
      if (first || r.wallMs < best) best = r.wallMs;
      first = false;
    }
    return best;
  }
  /// Within-run relative spread (max/min - 1, in percent): the case's own
  /// measured wall-time noise. Threaded cases on a loaded host show double
  /// digits here while the serial micros stay in low single digits.
  [[nodiscard]] double wallNoisePct() const {
    double lo = 0.0, hi = 0.0;
    bool first = true;
    for (const RunStats& r : runs) {
      if (r.aborted) continue;
      if (first || r.wallMs < lo) lo = r.wallMs;
      if (first || r.wallMs > hi) hi = r.wallMs;
      first = false;
    }
    return lo > 0.0 ? (hi / lo - 1.0) * 100.0 : 0.0;
  }
  /// Minimum peak RSS over the non-aborted runs — the same least-noise
  /// statistic as wallMsMin (peak RSS only over-reports under interference,
  /// e.g. when an earlier repeat's allocator high-water mark lingers).
  [[nodiscard]] uint64_t peakRssKbMin() const {
    uint64_t best = 0;
    bool first = true;
    for (const RunStats& r : runs) {
      if (r.aborted) continue;
      if (first || r.peakRssKb < best) best = r.peakRssKb;
      first = false;
    }
    return best;
  }
};

struct BenchDoc {
  std::string suite;
  std::string gitSha;
  bool obsEnabled = hsis::obs::kEnabled;
  int repeat = 0;
  int warmup = 0;
  std::vector<CaseResult> cases;

  [[nodiscard]] const CaseResult* findCase(const std::string& name) const {
    for (const CaseResult& c : cases)
      if (c.name == name) return &c;
    return nullptr;
  }
};

// ------------------------------------------------------------- measurement

inline double userSeconds() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_utime.tv_sec) +
         static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
}

/// Run `body` (warmup + repeat times) with a clean registry/tracer/abort
/// state per measured run, recording wall/user/peak-RSS. A run that throws
/// AbortedError is recorded as aborted; later repeats are skipped (the
/// whole case would only abort again).
inline CaseResult runCase(const std::string& name,
                          const std::function<void()>& body, int repeat,
                          int warmup) {
  CaseResult result;
  result.name = name;
  for (int w = 0; w < warmup; ++w) {
    try {
      body();
    } catch (const hsis::obs::AbortedError&) {
      // fall through to the measured runs, which will record it
      break;
    }
  }
  for (int r = 0; r < repeat; ++r) {
    hsis::obs::Registry::instance().resetAll();
    hsis::obs::Tracer::instance().clear();
    hsis::obs::clearAbort();
    RunStats stats;
    double user0 = userSeconds();
    hsis::obs::WallTimer wall;
    try {
      body();
      stats.wallMs = wall.seconds() * 1e3;
      stats.userMs = (userSeconds() - user0) * 1e3;
    } catch (const hsis::obs::AbortedError& e) {
      stats.wallMs = wall.seconds() * 1e3;
      stats.userMs = (userSeconds() - user0) * 1e3;
      stats.aborted = true;
      stats.abortReason = e.reason();
      stats.abortPhase = e.phase();
    }
    stats.peakRssKb = hsis::obs::peakRssKb();
    bool aborted = stats.aborted;
    result.runs.push_back(std::move(stats));
    if (aborted) break;
  }
  result.obsJson = hsis::obs::snapshotJson();
  return result;
}

/// Best-effort commit id for the baseline header: HSIS_GIT_SHA env var
/// (set by CI) or `git rev-parse --short HEAD`, else "unknown".
inline std::string gitSha() {
  if (const char* env = std::getenv("HSIS_GIT_SHA"); env && *env) return env;
  std::string sha;
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p)) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
    sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

// -------------------------------------------------------------- JSON write

namespace detail {

inline void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// Indent a pre-rendered JSON document for splicing as a nested value.
inline std::string indentBlock(const std::string& json, int spaces) {
  std::string pad(static_cast<size_t>(spaces), ' ');
  std::string out;
  out.reserve(json.size());
  for (size_t i = 0; i < json.size(); ++i) {
    out += json[i];
    if (json[i] == '\n' && i + 1 < json.size()) out += pad;
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == ' '))
    out.pop_back();
  return out;
}

}  // namespace detail

inline std::string toJson(const BenchDoc& doc) {
  using detail::appendEscaped;
  std::string out;
  out.reserve(8192);
  out += "{\n  \"schema\": \"hsis-bench-v1\",\n  \"suite\": ";
  appendEscaped(out, doc.suite);
  out += ",\n  \"git_sha\": ";
  appendEscaped(out, doc.gitSha);
  out += ",\n  \"obs_enabled\": ";
  out += doc.obsEnabled ? "true" : "false";
  out += ",\n  \"config\": {\"repeat\": " + std::to_string(doc.repeat) +
         ", \"warmup\": " + std::to_string(doc.warmup) + "},\n";
  out += "  \"cases\": [";
  for (size_t i = 0; i < doc.cases.size(); ++i) {
    const CaseResult& c = doc.cases[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    appendEscaped(out, c.name);
    out += ",\n     \"runs\": [";
    for (size_t r = 0; r < c.runs.size(); ++r) {
      const RunStats& run = c.runs[r];
      if (r != 0) out += ", ";
      out += "{\"wall_ms\": " + detail::fmt(run.wallMs) +
             ", \"user_ms\": " + detail::fmt(run.userMs) +
             ", \"peak_rss_kb\": " + std::to_string(run.peakRssKb) +
             ", \"aborted\": ";
      if (run.aborted) {
        out += "{\"reason\": ";
        appendEscaped(out, run.abortReason);
        out += ", \"phase\": ";
        appendEscaped(out, run.abortPhase);
        out += "}";
      } else {
        out += "null";
      }
      out += "}";
    }
    out += "],\n     \"wall_ms_min\": " + detail::fmt(c.wallMsMin());
    if (!c.obsJson.empty()) {
      out += ",\n     \"obs\": " + detail::indentBlock(c.obsJson, 5);
    }
    out += "}";
  }
  out += doc.cases.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

// --------------------------------------------------------------- JSON read

/// Parse a BENCH_*.json document (throws std::runtime_error on malformed
/// input or a wrong schema tag). The nested obs snapshots are kept only as
/// a presence check; compare works on the timing stats.
inline BenchDoc parseBenchJson(const std::string& text) {
  namespace jl = hsis::obs::jsonlite;
  jl::Value root = jl::parse(text);
  if (!root.isObject()) throw std::runtime_error("bench json: not an object");
  const jl::Object& obj = root.object();
  const jl::Value* schema = jl::find(obj, "schema");
  if (!schema || !schema->isString() || schema->str() != "hsis-bench-v1")
    throw std::runtime_error("bench json: schema is not hsis-bench-v1");
  BenchDoc doc;
  if (const jl::Value* v = jl::find(obj, "suite"); v && v->isString())
    doc.suite = v->str();
  if (const jl::Value* v = jl::find(obj, "git_sha"); v && v->isString())
    doc.gitSha = v->str();
  if (const jl::Value* v = jl::find(obj, "obs_enabled"); v)
    doc.obsEnabled = v->isNull() ? false : v->boolean();
  if (const jl::Value* v = jl::find(obj, "config"); v && v->isObject()) {
    if (const jl::Value* r = jl::find(v->object(), "repeat");
        r && r->isNumber())
      doc.repeat = static_cast<int>(r->number());
    if (const jl::Value* w = jl::find(v->object(), "warmup");
        w && w->isNumber())
      doc.warmup = static_cast<int>(w->number());
  }
  const jl::Value* cases = jl::find(obj, "cases");
  if (!cases || !cases->isArray())
    throw std::runtime_error("bench json: missing cases array");
  for (const jl::Value& cv : cases->array()) {
    if (!cv.isObject()) throw std::runtime_error("bench json: bad case");
    const jl::Object& co = cv.object();
    CaseResult c;
    if (const jl::Value* v = jl::find(co, "name"); v && v->isString())
      c.name = v->str();
    if (const jl::Value* runs = jl::find(co, "runs"); runs && runs->isArray()) {
      for (const jl::Value& rv : runs->array()) {
        if (!rv.isObject()) continue;
        const jl::Object& ro = rv.object();
        RunStats run;
        if (const jl::Value* v = jl::find(ro, "wall_ms"); v && v->isNumber())
          run.wallMs = v->number();
        if (const jl::Value* v = jl::find(ro, "user_ms"); v && v->isNumber())
          run.userMs = v->number();
        if (const jl::Value* v = jl::find(ro, "peak_rss_kb");
            v && v->isNumber())
          run.peakRssKb = static_cast<uint64_t>(v->number());
        if (const jl::Value* v = jl::find(ro, "aborted");
            v && v->isObject()) {
          run.aborted = true;
          if (const jl::Value* r2 = jl::find(v->object(), "reason");
              r2 && r2->isString())
            run.abortReason = r2->str();
          if (const jl::Value* p2 = jl::find(v->object(), "phase");
              p2 && p2->isString())
            run.abortPhase = p2->str();
        }
        c.runs.push_back(std::move(run));
      }
    }
    if (const jl::Value* v = jl::find(co, "obs"); v && v->isObject())
      c.obsJson = "{}";  // presence marker; timings are what compare reads
    doc.cases.push_back(std::move(c));
  }
  return doc;
}

// ----------------------------------------------------------------- compare

struct CompareRow {
  std::string name;
  double oldMs = 0.0;
  double newMs = 0.0;
  double ratio = 0.0;    ///< newMs / oldMs (0 when either side is missing)
  bool regression = false;
  uint64_t oldRssKb = 0;
  uint64_t newRssKb = 0;
  double rssRatio = 0.0;  ///< newRss / oldRss (0 when either side missing)
  bool memRegression = false;
  double noisePct = 0.0;  ///< per-case slack applied on top of the threshold
  std::string note;      ///< "", "only in old", "only in new", "aborted"
};

struct CompareResult {
  std::vector<CompareRow> rows;
  int regressions = 0;     ///< wall-time regressions
  int memRegressions = 0;  ///< peak-RSS regressions
};

/// Case-by-case diff of two BENCH docs on min wall time and min peak RSS.
/// `thresholdPct` is the allowed slowdown (10 flags a wall ratio above
/// 1.10); `memThresholdPct` the allowed RSS growth (<= 0 disables the
/// memory dimension). `noiseCapPct` > 0 grants each case extra slack equal
/// to its own measured within-run spread (the larger of the two sides'
/// wallNoisePct), capped at noiseCapPct — so a case whose repeats already
/// scatter by 15% is not flagged at a 10% threshold, while tight serial
/// micros keep the strict limit. Meant for the threaded suites, where
/// scheduler jitter dominates the min statistic.
inline CompareResult compareBench(const BenchDoc& oldDoc,
                                  const BenchDoc& newDoc,
                                  double thresholdPct,
                                  double memThresholdPct = 0.0,
                                  double noiseCapPct = 0.0) {
  CompareResult result;
  double memLimit = 1.0 + memThresholdPct / 100.0;
  for (const CaseResult& oldCase : oldDoc.cases) {
    CompareRow row;
    row.name = oldCase.name;
    const CaseResult* newCase = newDoc.findCase(oldCase.name);
    if (!newCase) {
      row.note = "only in old";
      result.rows.push_back(std::move(row));
      continue;
    }
    if (oldCase.anyAborted() || newCase->anyAborted()) {
      row.note = "aborted";
      result.rows.push_back(std::move(row));
      continue;
    }
    row.oldMs = oldCase.wallMsMin();
    row.newMs = newCase->wallMsMin();
    if (noiseCapPct > 0.0) {
      row.noisePct = std::min(
          noiseCapPct,
          std::max(oldCase.wallNoisePct(), newCase->wallNoisePct()));
    }
    if (row.oldMs > 0.0) {
      row.ratio = row.newMs / row.oldMs;
      row.regression =
          row.ratio > 1.0 + (thresholdPct + row.noisePct) / 100.0;
    }
    row.oldRssKb = oldCase.peakRssKbMin();
    row.newRssKb = newCase->peakRssKbMin();
    if (row.oldRssKb > 0) {
      row.rssRatio =
          static_cast<double>(row.newRssKb) / static_cast<double>(row.oldRssKb);
      row.memRegression = memThresholdPct > 0.0 && row.rssRatio > memLimit;
    }
    if (row.regression) ++result.regressions;
    if (row.memRegression) ++result.memRegressions;
    result.rows.push_back(std::move(row));
  }
  for (const CaseResult& newCase : newDoc.cases) {
    if (oldDoc.findCase(newCase.name)) continue;
    CompareRow row;
    row.name = newCase.name;
    row.newMs = newCase.wallMsMin();
    row.newRssKb = newCase.peakRssKbMin();
    row.note = "only in new";
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace hsisbench
