file(REMOVE_RECURSE
  "CMakeFiles/hsis_mvf.dir/mvf.cpp.o"
  "CMakeFiles/hsis_mvf.dir/mvf.cpp.o.d"
  "libhsis_mvf.a"
  "libhsis_mvf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_mvf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
