file(REMOVE_RECURSE
  "libhsis_mvf.a"
)
