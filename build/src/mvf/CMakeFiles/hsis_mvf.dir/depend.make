# Empty dependencies file for hsis_mvf.
# This may be replaced when dependencies are built.
