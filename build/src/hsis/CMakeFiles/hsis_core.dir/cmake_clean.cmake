file(REMOVE_RECURSE
  "CMakeFiles/hsis_core.dir/environment.cpp.o"
  "CMakeFiles/hsis_core.dir/environment.cpp.o.d"
  "libhsis_core.a"
  "libhsis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
