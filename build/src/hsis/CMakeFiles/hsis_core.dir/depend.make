# Empty dependencies file for hsis_core.
# This may be replaced when dependencies are built.
