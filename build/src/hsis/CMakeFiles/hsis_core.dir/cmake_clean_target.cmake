file(REMOVE_RECURSE
  "libhsis_core.a"
)
