file(REMOVE_RECURSE
  "CMakeFiles/hsis_debug.dir/mcdebug.cpp.o"
  "CMakeFiles/hsis_debug.dir/mcdebug.cpp.o.d"
  "CMakeFiles/hsis_debug.dir/report.cpp.o"
  "CMakeFiles/hsis_debug.dir/report.cpp.o.d"
  "libhsis_debug.a"
  "libhsis_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
