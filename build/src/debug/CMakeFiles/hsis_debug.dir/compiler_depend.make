# Empty compiler generated dependencies file for hsis_debug.
# This may be replaced when dependencies are built.
