file(REMOVE_RECURSE
  "libhsis_debug.a"
)
