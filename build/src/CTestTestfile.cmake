# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("bdd")
subdirs("mvf")
subdirs("blifmv")
subdirs("vl2mv")
subdirs("fsm")
subdirs("pif")
subdirs("ctl")
subdirs("lc")
subdirs("debug")
subdirs("sim")
subdirs("minimize")
subdirs("proplib")
subdirs("models")
subdirs("hsis")
