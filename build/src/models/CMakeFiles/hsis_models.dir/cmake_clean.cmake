file(REMOVE_RECURSE
  "CMakeFiles/hsis_models.dir/models.cpp.o"
  "CMakeFiles/hsis_models.dir/models.cpp.o.d"
  "libhsis_models.a"
  "libhsis_models.pdb"
  "models_data.inc"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
