file(REMOVE_RECURSE
  "libhsis_models.a"
)
