# Empty dependencies file for hsis_models.
# This may be replaced when dependencies are built.
