file(REMOVE_RECURSE
  "libhsis_sim.a"
)
