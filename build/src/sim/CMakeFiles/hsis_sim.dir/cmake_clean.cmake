file(REMOVE_RECURSE
  "CMakeFiles/hsis_sim.dir/simulator.cpp.o"
  "CMakeFiles/hsis_sim.dir/simulator.cpp.o.d"
  "libhsis_sim.a"
  "libhsis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
