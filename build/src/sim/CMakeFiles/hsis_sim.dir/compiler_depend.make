# Empty compiler generated dependencies file for hsis_sim.
# This may be replaced when dependencies are built.
