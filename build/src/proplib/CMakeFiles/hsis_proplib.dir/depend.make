# Empty dependencies file for hsis_proplib.
# This may be replaced when dependencies are built.
