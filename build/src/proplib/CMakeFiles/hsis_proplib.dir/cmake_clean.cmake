file(REMOVE_RECURSE
  "CMakeFiles/hsis_proplib.dir/proplib.cpp.o"
  "CMakeFiles/hsis_proplib.dir/proplib.cpp.o.d"
  "libhsis_proplib.a"
  "libhsis_proplib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_proplib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
