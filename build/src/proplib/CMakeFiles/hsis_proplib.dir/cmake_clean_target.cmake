file(REMOVE_RECURSE
  "libhsis_proplib.a"
)
