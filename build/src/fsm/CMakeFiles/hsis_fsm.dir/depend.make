# Empty dependencies file for hsis_fsm.
# This may be replaced when dependencies are built.
