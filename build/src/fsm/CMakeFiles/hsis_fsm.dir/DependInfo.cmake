
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/fsm.cpp" "src/fsm/CMakeFiles/hsis_fsm.dir/fsm.cpp.o" "gcc" "src/fsm/CMakeFiles/hsis_fsm.dir/fsm.cpp.o.d"
  "/root/repo/src/fsm/image.cpp" "src/fsm/CMakeFiles/hsis_fsm.dir/image.cpp.o" "gcc" "src/fsm/CMakeFiles/hsis_fsm.dir/image.cpp.o.d"
  "/root/repo/src/fsm/quantify.cpp" "src/fsm/CMakeFiles/hsis_fsm.dir/quantify.cpp.o" "gcc" "src/fsm/CMakeFiles/hsis_fsm.dir/quantify.cpp.o.d"
  "/root/repo/src/fsm/trace.cpp" "src/fsm/CMakeFiles/hsis_fsm.dir/trace.cpp.o" "gcc" "src/fsm/CMakeFiles/hsis_fsm.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdd/CMakeFiles/hsis_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/mvf/CMakeFiles/hsis_mvf.dir/DependInfo.cmake"
  "/root/repo/build/src/blifmv/CMakeFiles/hsis_blifmv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
