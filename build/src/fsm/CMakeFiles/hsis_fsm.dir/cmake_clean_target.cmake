file(REMOVE_RECURSE
  "libhsis_fsm.a"
)
