file(REMOVE_RECURSE
  "CMakeFiles/hsis_fsm.dir/fsm.cpp.o"
  "CMakeFiles/hsis_fsm.dir/fsm.cpp.o.d"
  "CMakeFiles/hsis_fsm.dir/image.cpp.o"
  "CMakeFiles/hsis_fsm.dir/image.cpp.o.d"
  "CMakeFiles/hsis_fsm.dir/quantify.cpp.o"
  "CMakeFiles/hsis_fsm.dir/quantify.cpp.o.d"
  "CMakeFiles/hsis_fsm.dir/trace.cpp.o"
  "CMakeFiles/hsis_fsm.dir/trace.cpp.o.d"
  "libhsis_fsm.a"
  "libhsis_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
