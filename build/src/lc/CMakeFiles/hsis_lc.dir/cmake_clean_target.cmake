file(REMOVE_RECURSE
  "libhsis_lc.a"
)
