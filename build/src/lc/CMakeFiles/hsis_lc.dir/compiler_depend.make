# Empty compiler generated dependencies file for hsis_lc.
# This may be replaced when dependencies are built.
