file(REMOVE_RECURSE
  "CMakeFiles/hsis_lc.dir/automaton.cpp.o"
  "CMakeFiles/hsis_lc.dir/automaton.cpp.o.d"
  "CMakeFiles/hsis_lc.dir/lc.cpp.o"
  "CMakeFiles/hsis_lc.dir/lc.cpp.o.d"
  "libhsis_lc.a"
  "libhsis_lc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_lc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
