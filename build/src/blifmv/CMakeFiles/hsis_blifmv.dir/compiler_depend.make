# Empty compiler generated dependencies file for hsis_blifmv.
# This may be replaced when dependencies are built.
