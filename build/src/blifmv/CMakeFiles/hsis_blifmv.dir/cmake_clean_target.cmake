file(REMOVE_RECURSE
  "libhsis_blifmv.a"
)
