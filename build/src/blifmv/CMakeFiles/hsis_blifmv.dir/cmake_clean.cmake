file(REMOVE_RECURSE
  "CMakeFiles/hsis_blifmv.dir/flatten.cpp.o"
  "CMakeFiles/hsis_blifmv.dir/flatten.cpp.o.d"
  "CMakeFiles/hsis_blifmv.dir/parser.cpp.o"
  "CMakeFiles/hsis_blifmv.dir/parser.cpp.o.d"
  "CMakeFiles/hsis_blifmv.dir/writer.cpp.o"
  "CMakeFiles/hsis_blifmv.dir/writer.cpp.o.d"
  "libhsis_blifmv.a"
  "libhsis_blifmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_blifmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
