file(REMOVE_RECURSE
  "libhsis_ctl.a"
)
