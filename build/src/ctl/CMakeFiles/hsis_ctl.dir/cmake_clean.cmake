file(REMOVE_RECURSE
  "CMakeFiles/hsis_ctl.dir/ctl.cpp.o"
  "CMakeFiles/hsis_ctl.dir/ctl.cpp.o.d"
  "CMakeFiles/hsis_ctl.dir/mc.cpp.o"
  "CMakeFiles/hsis_ctl.dir/mc.cpp.o.d"
  "libhsis_ctl.a"
  "libhsis_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
