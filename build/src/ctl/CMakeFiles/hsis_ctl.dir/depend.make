# Empty dependencies file for hsis_ctl.
# This may be replaced when dependencies are built.
