# CMake generated Testfile for 
# Source directory: /root/repo/src/vl2mv
# Build directory: /root/repo/build/src/vl2mv
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
