# Empty dependencies file for hsis_vl2mv.
# This may be replaced when dependencies are built.
