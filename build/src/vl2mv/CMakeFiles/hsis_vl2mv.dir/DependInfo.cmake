
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vl2mv/codegen.cpp" "src/vl2mv/CMakeFiles/hsis_vl2mv.dir/codegen.cpp.o" "gcc" "src/vl2mv/CMakeFiles/hsis_vl2mv.dir/codegen.cpp.o.d"
  "/root/repo/src/vl2mv/lexer.cpp" "src/vl2mv/CMakeFiles/hsis_vl2mv.dir/lexer.cpp.o" "gcc" "src/vl2mv/CMakeFiles/hsis_vl2mv.dir/lexer.cpp.o.d"
  "/root/repo/src/vl2mv/parser.cpp" "src/vl2mv/CMakeFiles/hsis_vl2mv.dir/parser.cpp.o" "gcc" "src/vl2mv/CMakeFiles/hsis_vl2mv.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blifmv/CMakeFiles/hsis_blifmv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
