file(REMOVE_RECURSE
  "libhsis_vl2mv.a"
)
