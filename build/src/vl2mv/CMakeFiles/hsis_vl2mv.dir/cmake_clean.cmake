file(REMOVE_RECURSE
  "CMakeFiles/hsis_vl2mv.dir/codegen.cpp.o"
  "CMakeFiles/hsis_vl2mv.dir/codegen.cpp.o.d"
  "CMakeFiles/hsis_vl2mv.dir/lexer.cpp.o"
  "CMakeFiles/hsis_vl2mv.dir/lexer.cpp.o.d"
  "CMakeFiles/hsis_vl2mv.dir/parser.cpp.o"
  "CMakeFiles/hsis_vl2mv.dir/parser.cpp.o.d"
  "libhsis_vl2mv.a"
  "libhsis_vl2mv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_vl2mv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
