file(REMOVE_RECURSE
  "libhsis_pif.a"
)
