# Empty dependencies file for hsis_pif.
# This may be replaced when dependencies are built.
