file(REMOVE_RECURSE
  "CMakeFiles/hsis_pif.dir/sigexpr.cpp.o"
  "CMakeFiles/hsis_pif.dir/sigexpr.cpp.o.d"
  "libhsis_pif.a"
  "libhsis_pif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_pif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
