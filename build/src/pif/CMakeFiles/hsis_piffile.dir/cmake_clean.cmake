file(REMOVE_RECURSE
  "CMakeFiles/hsis_piffile.dir/pif.cpp.o"
  "CMakeFiles/hsis_piffile.dir/pif.cpp.o.d"
  "libhsis_piffile.a"
  "libhsis_piffile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_piffile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
