file(REMOVE_RECURSE
  "libhsis_piffile.a"
)
