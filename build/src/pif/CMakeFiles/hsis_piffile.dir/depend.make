# Empty dependencies file for hsis_piffile.
# This may be replaced when dependencies are built.
