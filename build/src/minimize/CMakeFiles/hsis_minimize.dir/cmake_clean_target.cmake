file(REMOVE_RECURSE
  "libhsis_minimize.a"
)
