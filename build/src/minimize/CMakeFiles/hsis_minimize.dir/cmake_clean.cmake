file(REMOVE_RECURSE
  "CMakeFiles/hsis_minimize.dir/bisim.cpp.o"
  "CMakeFiles/hsis_minimize.dir/bisim.cpp.o.d"
  "CMakeFiles/hsis_minimize.dir/refine.cpp.o"
  "CMakeFiles/hsis_minimize.dir/refine.cpp.o.d"
  "libhsis_minimize.a"
  "libhsis_minimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
