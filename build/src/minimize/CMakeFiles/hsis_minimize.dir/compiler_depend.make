# Empty compiler generated dependencies file for hsis_minimize.
# This may be replaced when dependencies are built.
