
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/bdd_io.cpp" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_io.cpp.o" "gcc" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_io.cpp.o.d"
  "/root/repo/src/bdd/bdd_manager.cpp" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_manager.cpp.o" "gcc" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_manager.cpp.o.d"
  "/root/repo/src/bdd/bdd_ops.cpp" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_ops.cpp.o" "gcc" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_ops.cpp.o.d"
  "/root/repo/src/bdd/bdd_reorder.cpp" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_reorder.cpp.o" "gcc" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_reorder.cpp.o.d"
  "/root/repo/src/bdd/bdd_sat.cpp" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_sat.cpp.o" "gcc" "src/bdd/CMakeFiles/hsis_bdd.dir/bdd_sat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
