file(REMOVE_RECURSE
  "libhsis_bdd.a"
)
