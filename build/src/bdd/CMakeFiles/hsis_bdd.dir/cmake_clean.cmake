file(REMOVE_RECURSE
  "CMakeFiles/hsis_bdd.dir/bdd_io.cpp.o"
  "CMakeFiles/hsis_bdd.dir/bdd_io.cpp.o.d"
  "CMakeFiles/hsis_bdd.dir/bdd_manager.cpp.o"
  "CMakeFiles/hsis_bdd.dir/bdd_manager.cpp.o.d"
  "CMakeFiles/hsis_bdd.dir/bdd_ops.cpp.o"
  "CMakeFiles/hsis_bdd.dir/bdd_ops.cpp.o.d"
  "CMakeFiles/hsis_bdd.dir/bdd_reorder.cpp.o"
  "CMakeFiles/hsis_bdd.dir/bdd_reorder.cpp.o.d"
  "CMakeFiles/hsis_bdd.dir/bdd_sat.cpp.o"
  "CMakeFiles/hsis_bdd.dir/bdd_sat.cpp.o.d"
  "libhsis_bdd.a"
  "libhsis_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
