# Empty compiler generated dependencies file for hsis_bdd.
# This may be replaced when dependencies are built.
