file(REMOVE_RECURSE
  "CMakeFiles/proplib_demo.dir/proplib_demo.cpp.o"
  "CMakeFiles/proplib_demo.dir/proplib_demo.cpp.o.d"
  "proplib_demo"
  "proplib_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proplib_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
