# Empty dependencies file for proplib_demo.
# This may be replaced when dependencies are built.
