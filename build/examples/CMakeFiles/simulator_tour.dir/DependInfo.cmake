
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/simulator_tour.cpp" "examples/CMakeFiles/simulator_tour.dir/simulator_tour.cpp.o" "gcc" "examples/CMakeFiles/simulator_tour.dir/simulator_tour.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hsis/CMakeFiles/hsis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/hsis_models.dir/DependInfo.cmake"
  "/root/repo/build/src/proplib/CMakeFiles/hsis_proplib.dir/DependInfo.cmake"
  "/root/repo/build/src/vl2mv/CMakeFiles/hsis_vl2mv.dir/DependInfo.cmake"
  "/root/repo/build/src/pif/CMakeFiles/hsis_piffile.dir/DependInfo.cmake"
  "/root/repo/build/src/debug/CMakeFiles/hsis_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/lc/CMakeFiles/hsis_lc.dir/DependInfo.cmake"
  "/root/repo/build/src/ctl/CMakeFiles/hsis_ctl.dir/DependInfo.cmake"
  "/root/repo/build/src/pif/CMakeFiles/hsis_pif.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/minimize/CMakeFiles/hsis_minimize.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/hsis_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/mvf/CMakeFiles/hsis_mvf.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/hsis_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/blifmv/CMakeFiles/hsis_blifmv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
