# Empty compiler generated dependencies file for hsis_cli.
# This may be replaced when dependencies are built.
