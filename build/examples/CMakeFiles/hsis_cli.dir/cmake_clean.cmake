file(REMOVE_RECURSE
  "CMakeFiles/hsis_cli.dir/hsis_cli.cpp.o"
  "CMakeFiles/hsis_cli.dir/hsis_cli.cpp.o.d"
  "hsis_cli"
  "hsis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
