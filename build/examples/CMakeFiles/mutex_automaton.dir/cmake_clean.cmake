file(REMOVE_RECURSE
  "CMakeFiles/mutex_automaton.dir/mutex_automaton.cpp.o"
  "CMakeFiles/mutex_automaton.dir/mutex_automaton.cpp.o.d"
  "mutex_automaton"
  "mutex_automaton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_automaton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
