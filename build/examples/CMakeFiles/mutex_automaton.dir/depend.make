# Empty dependencies file for mutex_automaton.
# This may be replaced when dependencies are built.
