file(REMOVE_RECURSE
  "CMakeFiles/gigamax_debug.dir/gigamax_debug.cpp.o"
  "CMakeFiles/gigamax_debug.dir/gigamax_debug.cpp.o.d"
  "gigamax_debug"
  "gigamax_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gigamax_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
