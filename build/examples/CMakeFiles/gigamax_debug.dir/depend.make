# Empty dependencies file for gigamax_debug.
# This may be replaced when dependencies are built.
