# Empty compiler generated dependencies file for hsis_tests.
# This may be replaced when dependencies are built.
