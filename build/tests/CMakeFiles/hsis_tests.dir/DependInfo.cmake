
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bdd.cpp" "tests/CMakeFiles/hsis_tests.dir/test_bdd.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_bdd.cpp.o.d"
  "/root/repo/tests/test_bisim.cpp" "tests/CMakeFiles/hsis_tests.dir/test_bisim.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_bisim.cpp.o.d"
  "/root/repo/tests/test_blifmv.cpp" "tests/CMakeFiles/hsis_tests.dir/test_blifmv.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_blifmv.cpp.o.d"
  "/root/repo/tests/test_ctl.cpp" "tests/CMakeFiles/hsis_tests.dir/test_ctl.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_ctl.cpp.o.d"
  "/root/repo/tests/test_debug.cpp" "tests/CMakeFiles/hsis_tests.dir/test_debug.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_debug.cpp.o.d"
  "/root/repo/tests/test_environment.cpp" "tests/CMakeFiles/hsis_tests.dir/test_environment.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_environment.cpp.o.d"
  "/root/repo/tests/test_fsm.cpp" "tests/CMakeFiles/hsis_tests.dir/test_fsm.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_fsm.cpp.o.d"
  "/root/repo/tests/test_lc.cpp" "tests/CMakeFiles/hsis_tests.dir/test_lc.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_lc.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/hsis_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_mvf.cpp" "tests/CMakeFiles/hsis_tests.dir/test_mvf.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_mvf.cpp.o.d"
  "/root/repo/tests/test_pif.cpp" "tests/CMakeFiles/hsis_tests.dir/test_pif.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_pif.cpp.o.d"
  "/root/repo/tests/test_proplib.cpp" "tests/CMakeFiles/hsis_tests.dir/test_proplib.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_proplib.cpp.o.d"
  "/root/repo/tests/test_refine.cpp" "tests/CMakeFiles/hsis_tests.dir/test_refine.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_refine.cpp.o.d"
  "/root/repo/tests/test_sigexpr.cpp" "tests/CMakeFiles/hsis_tests.dir/test_sigexpr.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_sigexpr.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/hsis_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_suite_consistency.cpp" "tests/CMakeFiles/hsis_tests.dir/test_suite_consistency.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_suite_consistency.cpp.o.d"
  "/root/repo/tests/test_vl2mv.cpp" "tests/CMakeFiles/hsis_tests.dir/test_vl2mv.cpp.o" "gcc" "tests/CMakeFiles/hsis_tests.dir/test_vl2mv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hsis/CMakeFiles/hsis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/hsis_models.dir/DependInfo.cmake"
  "/root/repo/build/src/proplib/CMakeFiles/hsis_proplib.dir/DependInfo.cmake"
  "/root/repo/build/src/vl2mv/CMakeFiles/hsis_vl2mv.dir/DependInfo.cmake"
  "/root/repo/build/src/pif/CMakeFiles/hsis_piffile.dir/DependInfo.cmake"
  "/root/repo/build/src/debug/CMakeFiles/hsis_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/lc/CMakeFiles/hsis_lc.dir/DependInfo.cmake"
  "/root/repo/build/src/ctl/CMakeFiles/hsis_ctl.dir/DependInfo.cmake"
  "/root/repo/build/src/pif/CMakeFiles/hsis_pif.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/minimize/CMakeFiles/hsis_minimize.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/hsis_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/mvf/CMakeFiles/hsis_mvf.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/hsis_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/blifmv/CMakeFiles/hsis_blifmv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
