# Empty compiler generated dependencies file for bench_quantify.
# This may be replaced when dependencies are built.
