file(REMOVE_RECURSE
  "CMakeFiles/bench_quantify.dir/bench_quantify.cpp.o"
  "CMakeFiles/bench_quantify.dir/bench_quantify.cpp.o.d"
  "bench_quantify"
  "bench_quantify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
