# Empty compiler generated dependencies file for bench_efd.
# This may be replaced when dependencies are built.
