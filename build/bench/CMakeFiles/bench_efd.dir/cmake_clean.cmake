file(REMOVE_RECURSE
  "CMakeFiles/bench_efd.dir/bench_efd.cpp.o"
  "CMakeFiles/bench_efd.dir/bench_efd.cpp.o.d"
  "bench_efd"
  "bench_efd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_efd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
