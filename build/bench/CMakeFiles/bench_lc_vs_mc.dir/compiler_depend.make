# Empty compiler generated dependencies file for bench_lc_vs_mc.
# This may be replaced when dependencies are built.
