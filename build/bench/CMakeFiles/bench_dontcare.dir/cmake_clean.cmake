file(REMOVE_RECURSE
  "CMakeFiles/bench_dontcare.dir/bench_dontcare.cpp.o"
  "CMakeFiles/bench_dontcare.dir/bench_dontcare.cpp.o.d"
  "bench_dontcare"
  "bench_dontcare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dontcare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
